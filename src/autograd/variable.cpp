#include "autograd/variable.h"

#include "autograd/engine.h"
#include "core/check.h"

namespace hfta::ag {

Variable::Variable(Tensor value, bool requires_grad)
    : impl_(std::make_shared<Impl>()) {
  HFTA_CHECK(value.defined(), "Variable from undefined tensor");
  impl_->value = std::move(value);
  impl_->requires_grad = requires_grad;
}

const Tensor& Variable::value() const {
  HFTA_CHECK(defined(), "value() on undefined Variable");
  return impl_->value;
}

Tensor& Variable::mutable_value() {
  HFTA_CHECK(defined(), "mutable_value() on undefined Variable");
  return impl_->value;
}

Tensor& Variable::grad() {
  HFTA_CHECK(defined(), "grad() on undefined Variable");
  if (!impl_->grad.defined()) impl_->grad = Tensor::zeros(impl_->value.shape());
  return impl_->grad;
}

bool Variable::has_grad() const { return defined() && impl_->grad.defined(); }

bool Variable::requires_grad() const {
  return defined() && impl_->requires_grad;
}

void Variable::zero_grad() {
  if (defined() && impl_->grad.defined()) impl_->grad.zero_();
}

Variable Variable::detach() const {
  Variable v;
  if (defined()) {
    v.impl_ = std::make_shared<Impl>();
    v.impl_->value = impl_->value;  // shares storage, drops the tape
    v.impl_->requires_grad = false;
  }
  return v;
}

Variable Variable::make_output(Tensor value, std::shared_ptr<Node> node) {
  Variable v(std::move(value), /*requires_grad=*/true);
  v.impl_->node = std::move(node);
  return v;
}

const std::shared_ptr<Node>& Variable::node() const {
  static const std::shared_ptr<Node> null_node;
  return defined() ? impl_->node : null_node;
}

void Variable::backward(Tensor seed) const {
  // One-shot convenience: graph walking and gradient accumulation live in
  // ag::Engine; iteration drivers (hfta::TrainStep) hold a long-lived
  // Engine instead so the traversal scratch survives across steps.
  Engine engine;
  engine.run(*this, std::move(seed));
}

}  // namespace hfta::ag
