#include "autograd/variable.h"

#include <unordered_map>
#include <unordered_set>

#include "core/check.h"

namespace hfta::ag {

Variable::Variable(Tensor value, bool requires_grad)
    : impl_(std::make_shared<Impl>()) {
  HFTA_CHECK(value.defined(), "Variable from undefined tensor");
  impl_->value = std::move(value);
  impl_->requires_grad = requires_grad;
}

const Tensor& Variable::value() const {
  HFTA_CHECK(defined(), "value() on undefined Variable");
  return impl_->value;
}

Tensor& Variable::mutable_value() {
  HFTA_CHECK(defined(), "mutable_value() on undefined Variable");
  return impl_->value;
}

Tensor& Variable::grad() {
  HFTA_CHECK(defined(), "grad() on undefined Variable");
  if (!impl_->grad.defined()) impl_->grad = Tensor::zeros(impl_->value.shape());
  return impl_->grad;
}

bool Variable::has_grad() const { return defined() && impl_->grad.defined(); }

bool Variable::requires_grad() const {
  return defined() && impl_->requires_grad;
}

void Variable::zero_grad() {
  if (defined() && impl_->grad.defined()) impl_->grad.zero_();
}

Variable Variable::detach() const {
  Variable v;
  if (defined()) {
    v.impl_ = std::make_shared<Impl>();
    v.impl_->value = impl_->value;  // shares storage, drops the tape
    v.impl_->requires_grad = false;
  }
  return v;
}

Variable Variable::make_output(Tensor value, std::shared_ptr<Node> node) {
  Variable v(std::move(value), /*requires_grad=*/true);
  v.impl_->node = std::move(node);
  return v;
}

const std::shared_ptr<Node>& Variable::node() const {
  static const std::shared_ptr<Node> null_node;
  return defined() ? impl_->node : null_node;
}

void Variable::backward(Tensor seed) const {
  HFTA_CHECK(defined(), "backward() on undefined Variable");
  if (!seed.defined()) {
    HFTA_CHECK(numel() == 1,
               "backward() without seed requires a scalar; got ",
               shape_str(shape()));
    seed = Tensor::ones(value().shape());
  }
  HFTA_CHECK(seed.numel() == numel(), "backward(): seed shape mismatch");

  // Topological order over impls (post-order DFS, iterative).
  std::vector<Impl*> topo;
  std::unordered_set<Impl*> visited;
  std::vector<std::pair<Impl*, size_t>> stack;  // (impl, next child index)
  stack.emplace_back(impl_.get(), 0);
  visited.insert(impl_.get());
  while (!stack.empty()) {
    auto& [impl, child] = stack.back();
    if (impl->node && child < impl->node->inputs.size()) {
      const Variable& in = impl->node->inputs[child++];
      if (in.defined()) {
        Impl* ci = in.impl_.get();
        if (ci->node && !visited.count(ci)) {
          visited.insert(ci);
          stack.emplace_back(ci, 0);
        }
      }
    } else {
      topo.push_back(impl);
      stack.pop_back();
    }
  }

  // Seed and propagate in reverse topological order.
  impl_->grad = impl_->grad.defined() ? impl_->grad : Tensor::zeros(shape());
  impl_->grad.add_(seed.reshape(shape()));
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    Impl* impl = *it;
    if (!impl->node || !impl->grad.defined()) continue;
    std::vector<Tensor> gin = impl->node->backward(impl->grad);
    HFTA_CHECK(gin.size() == impl->node->inputs.size(),
               "backward of ", impl->node->name, " returned ", gin.size(),
               " grads for ", impl->node->inputs.size(), " inputs");
    for (size_t i = 0; i < gin.size(); ++i) {
      const Variable& in = impl->node->inputs[i];
      if (!in.defined() || !gin[i].defined()) continue;
      if (!in.impl_->requires_grad && !in.impl_->node) continue;
      Tensor& g = in.impl_->grad;
      if (!g.defined()) g = Tensor::zeros(in.shape());
      HFTA_CHECK(gin[i].numel() == g.numel(), "backward of ",
                 impl->node->name, ": grad ", i, " numel mismatch");
      g.add_(gin[i]);
    }
  }
}

}  // namespace hfta::ag
