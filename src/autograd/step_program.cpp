#include "autograd/step_program.h"

#include <utility>

#include "core/check.h"

namespace hfta::ag {

namespace {
thread_local StepProgram* g_recording = nullptr;
}  // namespace

StepProgram::CaptureGuard::CaptureGuard(StepProgram& p) : prev_(g_recording) {
  p.clear();
  g_recording = &p;
}

StepProgram::CaptureGuard::~CaptureGuard() { g_recording = prev_; }

StepProgram* StepProgram::recording() { return g_recording; }

void StepProgram::record_op(const Tensor& out,
                            std::function<Tensor()> recompute) {
  Slot s;
  s.out = out;
  s.compute = std::move(recompute);
  slots_.push_back(std::move(s));
}

void StepProgram::record_effect(std::function<void()> effect) {
  Slot s;
  s.effect = std::move(effect);
  slots_.push_back(std::move(s));
}

void StepProgram::finish_capture(Engine& engine, const Variable& root,
                                 Tensor seed) {
  HFTA_CHECK(g_recording != this,
             "finish_capture inside this program's own CaptureGuard — end "
             "the guard (forward capture) before freezing the backward");
  engine.run(root, std::move(seed), &tape_);
  captured_ = true;
}

void StepProgram::replay() {
  HFTA_CHECK(captured_, "StepProgram::replay() before finish_capture()");
  for (Slot& s : slots_) {
    if (s.effect) {
      s.effect();
      continue;
    }
    Tensor r = s.compute();
    // View ops (reshape) return the pinned storage itself — no copy.
    if (!r.shares_storage_with(s.out)) s.out.copy_(r);
  }
  tape_.replay();
}

int64_t StepProgram::op_count() const {
  int64_t n = 0;
  for (const Slot& s : slots_) n += s.compute ? 1 : 0;
  return n;
}

int64_t StepProgram::effect_count() const {
  return static_cast<int64_t>(slots_.size()) - op_count();
}

void StepProgram::clear() {
  slots_.clear();
  tape_.clear();
  captured_ = false;
}

bool capturing() { return g_recording != nullptr; }

void record_side_effect(std::function<void()> effect) {
  if (g_recording != nullptr) g_recording->record_effect(std::move(effect));
}

}  // namespace hfta::ag
