#include "autograd/gradcheck.h"

#include <cmath>
#include <sstream>

namespace hfta::ag {

GradcheckResult gradcheck(
    const std::function<Variable(std::vector<Variable>&)>& fn,
    std::vector<Variable> inputs, float eps, float tol) {
  GradcheckResult result;

  // Analytic gradients.
  for (Variable& v : inputs) v.zero_grad();
  Variable out = fn(inputs);
  out.backward();

  for (size_t vi = 0; vi < inputs.size(); ++vi) {
    Variable& v = inputs[vi];
    if (!v.requires_grad()) continue;
    const Tensor analytic = v.grad().clone();
    Tensor& val = v.mutable_value();
    for (int64_t i = 0; i < val.numel(); ++i) {
      const float orig = val.data()[i];
      val.data()[i] = orig + eps;
      const float up = fn(inputs).value().item();
      val.data()[i] = orig - eps;
      const float dn = fn(inputs).value().item();
      val.data()[i] = orig;
      const float numeric = (up - dn) / (2.f * eps);
      const float err = std::fabs(analytic.data()[i] - numeric);
      if (err > result.max_error) result.max_error = err;
      if (err > tol && result.ok) {
        result.ok = false;
        std::ostringstream os;
        os << "input " << vi << " flat index " << i << ": analytic "
           << analytic.data()[i] << " vs numeric " << numeric;
        result.detail = os.str();
      }
    }
  }
  return result;
}

}  // namespace hfta::ag
