// Autocast: scoped mixed-precision policy for the differentiable ops.
//
// Inside an AutocastGuard(kF16 / kBF16) scope, the GEMM/conv-class ops
// (matmul, bmm, bmm_nt, baddbmm, linear, conv*, conv_transpose*) round
// their tensor operands — NOT their biases — to the autocast dtype before
// computing, and accumulate in f32, so the op class runs "fp32-accumulate
// from low-precision inputs". Everything else is untouched: elementwise and
// pooling ops run native on the (f32) activations that GEMMs produce, and
// reductions/losses stay f32. Gradients are ALWAYS f32.
//
// How the rounding happens differs by family. The GEMM family passes the
// dtype as a quantize policy into ops::matmul et al., which round operands
// to the half format INSIDE the pack loop (vec::PackType::kF32Q*) — no cast
// tensors, no cast nodes, bit-identical to casting to 16-bit storage first
// because both are defined by the same f32 -> half -> f32 round trip. The
// conv family still materializes casts as recorded ops (ag::cast), whose
// backward is the identity into the original f32 tensor.
//
// Both formulations are capture/replay-safe: the GEMM family's policy rides
// by value in the op closures, and the conv family's casts replay as
// ordinary thunks. TrainStep mixes the autocast state into its structural
// fingerprint, so toggling precision recaptures instead of replaying a
// stale-precision program.
//
// The policy flag is thread_local. Guards are used on the launching thread
// (graph construction is single-threaded here); worker threads never build
// graphs.
#pragma once

#include "autograd/variable.h"
#include "tensor/dtype.h"

namespace hfta::ag {

/// True inside an AutocastGuard scope with a 16-bit dtype.
bool autocast_enabled();

/// The active autocast dtype (meaningful only when autocast_enabled()).
DType autocast_dtype();

/// RAII scope. Passing kF32 DISABLES autocast within the scope — that is how
/// fp32 code (and TrainStep with AMP off) pins the policy regardless of any
/// enclosing scope.
class AutocastGuard {
 public:
  explicit AutocastGuard(DType dtype);
  ~AutocastGuard();
  AutocastGuard(const AutocastGuard&) = delete;
  AutocastGuard& operator=(const AutocastGuard&) = delete;

 private:
  bool prev_enabled_;
  DType prev_dtype_;
};

/// Applies the policy to one GEMM/conv-class operand: under an active guard,
/// returns ag::cast(v, autocast_dtype()); otherwise (or when v is undefined
/// or already that dtype) returns v unchanged.
Variable autocast_input(const Variable& v);

}  // namespace hfta::ag
