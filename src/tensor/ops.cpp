#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/parallel.h"
#include "core/vec.h"

namespace hfta::ops {

namespace {

// Fixed bound on tensor rank so parallel kernels can keep their mixed-radix
// counters in stack arrays (no per-chunk heap traffic).
constexpr int64_t kMaxRank = 16;

// Pads `s` on the left with 1s to rank `nd`.
Shape pad_shape(const Shape& s, int64_t nd) {
  Shape out(static_cast<size_t>(nd), 1);
  std::copy(s.begin(), s.end(), out.end() - static_cast<int64_t>(s.size()));
  return out;
}

// Row-major strides; stride 0 where the dim is broadcast (size 1 vs out > 1).
std::vector<int64_t> broadcast_strides(const Shape& padded, const Shape& out) {
  const size_t nd = out.size();
  std::vector<int64_t> strides(nd, 0);
  int64_t s = 1;
  for (int64_t i = static_cast<int64_t>(nd) - 1; i >= 0; --i) {
    const size_t ui = static_cast<size_t>(i);
    if (padded[ui] == out[ui]) {
      strides[ui] = (padded[ui] == 1) ? 0 : s;
    } else {
      strides[ui] = 0;  // padded[ui] == 1, broadcast
    }
    s *= padded[ui];
  }
  return strides;
}

// Same-shape fast path through the vec layer: contiguous [lo, hi) slices of
// one elementwise map, chunked exactly like the scalar loop it replaces.
// These ops are single-rounding IEEE maps, so vectorization cannot change
// any output bit. Broadcast shapes fall back to the generic strided walk.
Tensor binary_vec(const Tensor& a, const Tensor& b, vec::BinOp op,
                  float (*fn)(float, float)) {
  if (a.defined() && b.defined() && a.shape() == b.shape()) {
    Tensor out = Tensor::empty(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    parallel_for(Partition::elems(out.numel()), [&](int64_t lo, int64_t hi) {
      vec::binary(op, pa + lo, pb + lo, po + lo, hi - lo);
    });
    return out;
  }
  return binary(a, b, fn);
}

Tensor unary_vec(const Tensor& a, vec::UnOp op, float p0, float p1 = 0.f) {
  Tensor out = Tensor::empty(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  parallel_for(Partition::elems(a.numel()), [&](int64_t lo, int64_t hi) {
    vec::unary(op, p0, p1, pa + lo, po + lo, hi - lo);
  });
  return out;
}

}  // namespace

Shape broadcast_shapes(const Shape& a, const Shape& b) {
  const int64_t nd = std::max<int64_t>(static_cast<int64_t>(a.size()),
                                       static_cast<int64_t>(b.size()));
  const Shape pa = pad_shape(a, nd);
  const Shape pb = pad_shape(b, nd);
  Shape out(static_cast<size_t>(nd));
  for (int64_t i = 0; i < nd; ++i) {
    const size_t ui = static_cast<size_t>(i);
    HFTA_CHECK(pa[ui] == pb[ui] || pa[ui] == 1 || pb[ui] == 1,
               "cannot broadcast ", shape_str(a), " with ", shape_str(b));
    out[ui] = std::max(pa[ui], pb[ui]);
  }
  return out;
}

Tensor binary(const Tensor& a, const Tensor& b, float (*fn)(float, float)) {
  HFTA_CHECK(a.defined() && b.defined(), "binary op on undefined tensor");
  // Fast path: identical shapes.
  if (a.shape() == b.shape()) {
    Tensor out = Tensor::empty(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    const int64_t n = out.numel();
    parallel_for(Partition::elems(n), [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) po[i] = fn(pa[i], pb[i]);
    });
    return out;
  }
  const Shape out_shape = broadcast_shapes(a.shape(), b.shape());
  const int64_t nd = static_cast<int64_t>(out_shape.size());
  HFTA_CHECK(nd <= kMaxRank, "binary: rank ", nd, " exceeds ", kMaxRank);
  const auto sa = broadcast_strides(pad_shape(a.shape(), nd), out_shape);
  const auto sb = broadcast_strides(pad_shape(b.shape(), nd), out_shape);
  Tensor out = Tensor::empty(out_shape);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t n = out.numel();
  // Pure map: each output element reads fixed source offsets, so chunks are
  // independent. Each chunk seeds the mixed-radix counter from its first
  // flat index and then walks exactly like the old serial loop.
  parallel_for(Partition::elems(n), [&](int64_t lo, int64_t hi) {
    int64_t idx[kMaxRank] = {0};
    int64_t oa = 0, ob = 0;
    int64_t rem = lo;
    for (int64_t d = nd - 1; d >= 0; --d) {
      const size_t ud = static_cast<size_t>(d);
      idx[ud] = rem % out_shape[ud];
      rem /= out_shape[ud];
      oa += idx[ud] * sa[ud];
      ob += idx[ud] * sb[ud];
    }
    for (int64_t flat = lo; flat < hi; ++flat) {
      po[flat] = fn(pa[oa], pb[ob]);
      for (int64_t d = nd - 1; d >= 0; --d) {
        const size_t ud = static_cast<size_t>(d);
        oa += sa[ud];
        ob += sb[ud];
        if (++idx[ud] < out_shape[ud]) break;
        idx[ud] = 0;
        oa -= sa[ud] * out_shape[ud];
        ob -= sb[ud] * out_shape[ud];
      }
    }
  });
  return out;
}

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_vec(a, b, vec::BinOp::kAdd,
                    [](float x, float y) { return x + y; });
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_vec(a, b, vec::BinOp::kSub,
                    [](float x, float y) { return x - y; });
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_vec(a, b, vec::BinOp::kMul,
                    [](float x, float y) { return x * y; });
}
Tensor div(const Tensor& a, const Tensor& b) {
  return binary_vec(a, b, vec::BinOp::kDiv,
                    [](float x, float y) { return x / y; });
}
Tensor maximum(const Tensor& a, const Tensor& b) {
  return binary_vec(a, b, vec::BinOp::kMax,
                    [](float x, float y) { return x > y ? x : y; });
}

Tensor reduce_to_shape(const Tensor& grad, const Shape& shape) {
  if (grad.shape() == shape) return grad;
  const int64_t nd = grad.dim();
  const Shape padded = pad_shape(shape, nd);
  std::vector<int64_t> dims;
  for (int64_t i = 0; i < nd; ++i) {
    if (padded[static_cast<size_t>(i)] == 1 && grad.size(i) != 1)
      dims.push_back(i);
  }
  Tensor r = dims.empty() ? grad : sum(grad, dims, /*keepdim=*/true);
  return r.reshape(shape);
}

Tensor add_scalar(const Tensor& a, float s) {
  return unary_vec(a, vec::UnOp::kAddScalar, s);
}
Tensor mul_scalar(const Tensor& a, float s) {
  return unary_vec(a, vec::UnOp::kMulScalar, s);
}

Tensor unary(const Tensor& a, FunctionRef<float(float)> fn) {
  Tensor out = Tensor::empty(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  const int64_t n = a.numel();
  parallel_for(Partition::elems(n), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = fn(pa[i]);
  });
  return out;
}

Tensor neg(const Tensor& a) { return unary_vec(a, vec::UnOp::kNeg, 0.f); }
Tensor exp(const Tensor& a) { return unary(a, [](float x) { return std::exp(x); }); }
Tensor log(const Tensor& a) { return unary(a, [](float x) { return std::log(x); }); }
Tensor sqrt(const Tensor& a) { return unary(a, [](float x) { return std::sqrt(x); }); }
Tensor tanh(const Tensor& a) { return unary(a, [](float x) { return std::tanh(x); }); }
Tensor sigmoid(const Tensor& a) {
  return unary(a, [](float x) { return 1.f / (1.f + std::exp(-x)); });
}
Tensor relu(const Tensor& a) { return unary_vec(a, vec::UnOp::kRelu, 0.f); }
Tensor relu_backward(const Tensor& gy, const Tensor& x) {
  return binary_vec(gy, x, vec::BinOp::kReluBwd, [](float g, float v) {
    return g * (v > 0.f ? 1.f : 0.f);
  });
}
Tensor clamp(const Tensor& a, float lo, float hi) {
  return unary_vec(a, vec::UnOp::kClamp, lo, hi);
}
Tensor leaky_relu(const Tensor& a, float slope) {
  return unary_vec(a, vec::UnOp::kLeakyRelu, slope);
}
Tensor pow_scalar(const Tensor& a, float p) {
  return unary(a, [p](float x) { return std::pow(x, p); });
}
Tensor abs(const Tensor& a) { return unary_vec(a, vec::UnOp::kAbs, 0.f); }

Tensor sum(const Tensor& a, std::vector<int64_t> dims, bool keepdim) {
  const int64_t nd = a.dim();
  std::vector<bool> reduce(static_cast<size_t>(nd), false);
  for (int64_t d : dims) {
    if (d < 0) d += nd;
    HFTA_CHECK(d >= 0 && d < nd, "sum: dim out of range");
    reduce[static_cast<size_t>(d)] = true;
  }
  Shape out_shape;
  for (int64_t i = 0; i < nd; ++i) {
    const bool r = reduce[static_cast<size_t>(i)];
    if (r && keepdim) out_shape.push_back(1);
    if (!r) out_shape.push_back(a.size(i));
  }
  HFTA_CHECK(nd <= kMaxRank, "sum: rank ", nd, " exceeds ", kMaxRank);
  Tensor out = Tensor::empty(out_shape.empty() ? Shape{} : out_shape);
  // Row-major strides of the input, then split dims into kept / reduced
  // (original order preserved in both lists).
  std::vector<int64_t> in_strides(static_cast<size_t>(nd), 1);
  for (int64_t i = nd - 2; i >= 0; --i)
    in_strides[static_cast<size_t>(i)] =
        in_strides[static_cast<size_t>(i + 1)] * a.size(i + 1);
  std::vector<int64_t> kept_size, kept_stride, red_size, red_stride;
  int64_t red_count = 1;
  for (int64_t i = 0; i < nd; ++i) {
    if (reduce[static_cast<size_t>(i)]) {
      red_size.push_back(a.size(i));
      red_stride.push_back(in_strides[static_cast<size_t>(i)]);
      red_count *= a.size(i);
    } else {
      kept_size.push_back(a.size(i));
      kept_stride.push_back(in_strides[static_cast<size_t>(i)]);
    }
  }
  const float* pa = a.data();
  float* po = out.data();
  const int64_t out_n = out.numel();
  // Fast path: when the reduced dims form one contiguous block, the input is
  // a [outer, red_count, inner] view with unit-stride inner, and each output
  // element's chain is a per-column ascending-r sum — exactly vec::col_sum's
  // contract, so this path is bit-identical to the generic walk below.
  // (Hot case: bias gradients, sum over the row dim of a [rows, out] view.)
  if (!red_size.empty()) {
    bool consec = true;
    int64_t d0 = -1, dprev = -1;
    for (int64_t i = 0; i < nd; ++i) {
      if (!reduce[static_cast<size_t>(i)]) continue;
      if (d0 < 0) d0 = i;
      else if (i != dprev + 1) { consec = false; break; }
      dprev = i;
    }
    if (consec) {
      int64_t outer = 1, inner = 1;
      for (int64_t i = 0; i < d0; ++i) outer *= a.size(i);
      for (int64_t i = dprev < 0 ? d0 + 1 : dprev + 1; i < nd; ++i)
        inner *= a.size(i);
      if (inner > 1) {
        parallel_for(Partition::rows(outer), [&](int64_t lo, int64_t hi) {
          for (int64_t o = lo; o < hi; ++o)
            vec::col_sum(pa + o * red_count * inner, po + o * inner, red_count,
                         inner, /*accumulate=*/false);
        });
        return out;
      }
    }
  }
  // Output-parallel reduction: each output element owns one accumulation
  // chain that visits its inputs in ascending flat order — the same order
  // the old serial flat walk used — so no chain is ever split and the
  // result is bit-identical at every thread count.
  parallel_for(Partition::rows(out_n), [&](int64_t lo, int64_t hi) {
    const size_t nk = kept_size.size();
    const size_t nr = red_size.size();
    for (int64_t of = lo; of < hi; ++of) {
      int64_t rem = of, base = 0;
      for (size_t k = nk; k-- > 0;) {
        base += (rem % kept_size[k]) * kept_stride[k];
        rem /= kept_size[k];
      }
      int64_t ridx[kMaxRank] = {0};
      int64_t roff = 0;
      float acc = 0.f;
      for (int64_t r = 0; r < red_count; ++r) {
        acc += pa[base + roff];
        for (size_t d = nr; d-- > 0;) {
          roff += red_stride[d];
          if (++ridx[d] < red_size[d]) break;
          ridx[d] = 0;
          roff -= red_stride[d] * red_size[d];
        }
      }
      po[of] = acc;
    }
  });
  return out;
}

Tensor sum_all(const Tensor& a) {
  // Deliberately serial: a single double-precision chain over the whole
  // tensor. Splitting it would need a combine step whose float result
  // depends on the partition, and this sits on loss paths where the
  // bit-exactness audits would notice.
  const float* p = a.data();
  double acc = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) acc += p[i];
  Tensor out = Tensor::empty(Shape{});
  out.data()[0] = static_cast<float>(acc);
  return out;
}

Tensor mean(const Tensor& a, std::vector<int64_t> dims, bool keepdim) {
  int64_t count = 1;
  const int64_t nd = a.dim();
  for (int64_t d : dims) {
    if (d < 0) d += nd;
    count *= a.size(d);
  }
  Tensor s = sum(a, std::move(dims), keepdim);
  s.mul_(1.f / static_cast<float>(count));
  return s;
}

Tensor mean_all(const Tensor& a) {
  Tensor s = sum_all(a);
  s.mul_(1.f / static_cast<float>(a.numel()));
  return s;
}

std::pair<Tensor, Tensor> max_dim(const Tensor& a, int64_t dim, bool keepdim) {
  const int64_t nd = a.dim();
  if (dim < 0) dim += nd;
  HFTA_CHECK(dim >= 0 && dim < nd, "max_dim: dim out of range");
  int64_t outer = 1, inner = 1;
  const int64_t n = a.size(dim);
  for (int64_t i = 0; i < dim; ++i) outer *= a.size(i);
  for (int64_t i = dim + 1; i < nd; ++i) inner *= a.size(i);
  Shape out_shape;
  for (int64_t i = 0; i < nd; ++i) {
    if (i == dim) {
      if (keepdim) out_shape.push_back(1);
    } else {
      out_shape.push_back(a.size(i));
    }
  }
  Tensor values = Tensor::empty(out_shape.empty() ? Shape{} : out_shape);
  Tensor indices = Tensor::empty(values.shape());
  const float* pa = a.data();
  float* pv = values.data();
  float* pi = indices.data();
  parallel_for(Partition::rows(outer), [&](int64_t lo, int64_t hi) {
    for (int64_t o = lo; o < hi; ++o) {
      for (int64_t in = 0; in < inner; ++in) {
        float best = pa[(o * n) * inner + in];
        int64_t best_i = 0;
        for (int64_t k = 1; k < n; ++k) {
          const float v = pa[(o * n + k) * inner + in];
          if (v > best) {
            best = v;
            best_i = k;
          }
        }
        pv[o * inner + in] = best;
        pi[o * inner + in] = static_cast<float>(best_i);
      }
    }
  });
  return {values, indices};
}

Tensor argmax(const Tensor& a, int64_t dim) {
  return max_dim(a, dim, /*keepdim=*/false).second;
}

Tensor concat(const std::vector<Tensor>& ts, int64_t dim) {
  HFTA_CHECK(!ts.empty(), "concat of empty list");
  const int64_t nd = ts[0].dim();
  if (dim < 0) dim += nd;
  HFTA_CHECK(dim >= 0 && dim < nd, "concat: dim out of range");
  Shape out_shape = ts[0].shape();
  int64_t total = 0;
  for (const Tensor& t : ts) {
    HFTA_CHECK(t.dim() == nd, "concat: rank mismatch");
    for (int64_t i = 0; i < nd; ++i) {
      if (i != dim)
        HFTA_CHECK(t.size(i) == out_shape[static_cast<size_t>(i)],
                   "concat: shape mismatch at dim ", i);
    }
    total += t.size(dim);
  }
  out_shape[static_cast<size_t>(dim)] = total;
  Tensor out = Tensor::empty(out_shape);
  int64_t outer = 1, inner = 1;
  for (int64_t i = 0; i < dim; ++i) outer *= out_shape[static_cast<size_t>(i)];
  for (int64_t i = dim + 1; i < nd; ++i) inner *= out_shape[static_cast<size_t>(i)];
  float* dst = out.data();
  int64_t row_off = 0;
  for (const Tensor& t : ts) {
    const int64_t rows = t.size(dim);
    const float* src = t.data();
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(dst + (o * total + row_off) * inner, src + o * rows * inner,
                  sizeof(float) * static_cast<size_t>(rows * inner));
    }
    row_off += rows;
  }
  return out;
}

std::vector<Tensor> split(const Tensor& t, const std::vector<int64_t>& sizes,
                          int64_t dim) {
  const int64_t nd = t.dim();
  if (dim < 0) dim += nd;
  int64_t total = 0;
  for (int64_t s : sizes) total += s;
  HFTA_CHECK(total == t.size(dim), "split: sizes sum ", total, " != dim size ",
             t.size(dim));
  std::vector<Tensor> out;
  int64_t start = 0;
  for (int64_t s : sizes) {
    out.push_back(t.slice(dim, start, start + s));
    start += s;
  }
  return out;
}

std::vector<Tensor> chunk(const Tensor& t, int64_t chunks, int64_t dim) {
  const int64_t nd = t.dim();
  int64_t d = dim < 0 ? dim + nd : dim;
  HFTA_CHECK(t.size(d) % chunks == 0, "chunk: ", t.size(d),
             " not divisible by ", chunks);
  return split(t, std::vector<int64_t>(static_cast<size_t>(chunks),
                                       t.size(d) / chunks), d);
}

Tensor index_select(const Tensor& t, int64_t dim,
                    const std::vector<int64_t>& indices) {
  const int64_t nd = t.dim();
  if (dim < 0) dim += nd;
  Shape out_shape = t.shape();
  out_shape[static_cast<size_t>(dim)] = static_cast<int64_t>(indices.size());
  Tensor out = Tensor::empty(out_shape);
  int64_t outer = 1, inner = 1;
  const int64_t n = t.size(dim);
  for (int64_t i = 0; i < dim; ++i) outer *= t.size(i);
  for (int64_t i = dim + 1; i < nd; ++i) inner *= t.size(i);
  const float* src = t.data();
  float* dst = out.data();
  const int64_t rows = static_cast<int64_t>(indices.size());
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t r = 0; r < rows; ++r) {
      const int64_t i = indices[static_cast<size_t>(r)];
      HFTA_CHECK(i >= 0 && i < n, "index_select: index ", i, " out of range");
      std::memcpy(dst + (o * rows + r) * inner, src + (o * n + i) * inner,
                  sizeof(float) * static_cast<size_t>(inner));
    }
  }
  return out;
}

Tensor stack_repeat(const Tensor& t, int64_t reps) {
  Shape out_shape = t.shape();
  out_shape.insert(out_shape.begin(), reps);
  Tensor out = Tensor::empty(out_shape);
  float* dst = out.data();
  for (int64_t r = 0; r < reps; ++r)
    std::memcpy(dst + r * t.numel(), t.data(),
                sizeof(float) * static_cast<size_t>(t.numel()));
  return out;
}

namespace {
// Applies fn(row_in, row_out, n) over rows of a [outer, n, inner] view.
template <typename Fn>
void rowwise(const Tensor& a, int64_t dim, Tensor& out, Fn fn) {
  const int64_t nd = a.dim();
  int64_t outer = 1, inner = 1;
  const int64_t n = a.size(dim);
  for (int64_t i = 0; i < dim; ++i) outer *= a.size(i);
  for (int64_t i = dim + 1; i < nd; ++i) inner *= a.size(i);
  const float* pa = a.data();
  float* po = out.data();
  parallel_for(Partition::range(0, outer * inner, 64),
               [&](int64_t lo, int64_t hi) {
    for (int64_t oi = lo; oi < hi; ++oi) {
      const int64_t o = oi / inner;
      const int64_t in = oi % inner;
      fn(pa + (o * n) * inner + in, po + (o * n) * inner + in, n, inner);
    }
  });
}
}  // namespace

// softmax / log_softmax run on the vec row reductions: fixed 8-lane strips
// with the fixed cross-lane tree and the shared polynomial exp — the SAME
// strip/tree shape on every backend and at every thread count, so fused ==
// serial == scalar-build holds bitwise (see DESIGN.md §11).

Tensor softmax(const Tensor& a, int64_t dim) {
  if (dim < 0) dim += a.dim();
  Tensor out = Tensor::empty(a.shape());
  rowwise(a, dim, out, [](const float* x, float* y, int64_t n, int64_t st) {
    const float mx = vec::row_max(x, st, n);
    const float z = vec::row_sumexp(x, st, n, mx, y);
    const float inv = 1.f / z;
    if (st == 1) {
      vec::unary(vec::UnOp::kMulScalar, inv, 0.f, y, y, n);
    } else {
      for (int64_t i = 0; i < n; ++i) y[i * st] *= inv;
    }
  });
  return out;
}

Tensor log_softmax(const Tensor& a, int64_t dim) {
  if (dim < 0) dim += a.dim();
  Tensor out = Tensor::empty(a.shape());
  rowwise(a, dim, out, [](const float* x, float* y, int64_t n, int64_t st) {
    const float mx = vec::row_max(x, st, n);
    const float z = vec::row_sumexp(x, st, n, mx, nullptr);
    const float lse = mx + std::log(z);
    if (st == 1) {
      // x - lse == x + (-lse) exactly (negation is exact).
      vec::unary(vec::UnOp::kAddScalar, -lse, 0.f, x, y, n);
    } else {
      for (int64_t i = 0; i < n; ++i) y[i * st] = x[i * st] - lse;
    }
  });
  return out;
}

Tensor log_softmax_backward(const Tensor& gy, const Tensor& log_probs,
                            int64_t dim) {
  if (dim < 0) dim += gy.dim();
  Tensor sum_gy = sum(gy, {dim}, /*keepdim=*/true);
  // gx = gy - exp(log_probs) * sum(gy)
  return sub(gy, mul(exp(log_probs), sum_gy));
}

Tensor softmax_backward(const Tensor& gy, const Tensor& y, int64_t dim) {
  if (dim < 0) dim += gy.dim();
  Tensor dot = sum(mul(gy, y), {dim}, /*keepdim=*/true);
  return mul(y, sub(gy, dot));
}

Tensor embedding(const Tensor& indices, const Tensor& weight) {
  HFTA_CHECK(weight.dim() == 2, "embedding weight must be [V, E]");
  const int64_t V = weight.size(0);
  const int64_t E = weight.size(1);
  Shape out_shape = indices.shape();
  out_shape.push_back(E);
  Tensor out = Tensor::empty(out_shape);
  const float* pi = indices.data();
  const float* pw = weight.data();
  float* po = out.data();
  const int64_t n = indices.numel();
  for (int64_t i = 0; i < n; ++i) {
    const int64_t v = static_cast<int64_t>(pi[i]);
    HFTA_CHECK(v >= 0 && v < V, "embedding: index ", v, " out of vocab ", V);
    std::memcpy(po + i * E, pw + v * E, sizeof(float) * static_cast<size_t>(E));
  }
  return out;
}

Tensor embedding_backward(const Tensor& grad_out, const Tensor& indices,
                          int64_t vocab) {
  const int64_t E = grad_out.size(-1);
  Tensor gw({vocab, E});
  const float* pg = grad_out.data();
  const float* pi = indices.data();
  float* pw = gw.data();
  const int64_t n = indices.numel();
  // Vocab-row-parallel scatter: each chunk owns rows [lo, hi) and scans the
  // whole index list, so no two chunks write the same row and every row's
  // adds happen in ascending i — the exact serial chain.
  parallel_for(Partition::rows(vocab), [&](int64_t lo, int64_t hi) {
    for (int64_t i = 0; i < n; ++i) {
      const int64_t v = static_cast<int64_t>(pi[i]);
      if (v < lo || v >= hi) continue;
      float* row = pw + v * E;
      vec::binary(vec::BinOp::kAdd, row, pg + i * E, row, E);
    }
  });
  return gw;
}

double accuracy(const Tensor& logits, const Tensor& labels) {
  Tensor pred = argmax(logits, -1);
  HFTA_CHECK(pred.numel() == labels.numel(), "accuracy: shape mismatch");
  const float* pp = pred.data();
  const float* pl = labels.data();
  int64_t hit = 0;
  for (int64_t i = 0; i < pred.numel(); ++i) {
    if (static_cast<int64_t>(pp[i]) == static_cast<int64_t>(pl[i])) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(pred.numel());
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  HFTA_CHECK(a.numel() == b.numel(), "max_abs_diff: numel mismatch");
  const float* pa = a.data();
  const float* pb = b.data();
  float m = 0.f;
  for (int64_t i = 0; i < a.numel(); ++i)
    m = std::max(m, std::fabs(pa[i] - pb[i]));
  return m;
}

bool allclose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  const float* pb = b.data();
  float scale = 0.f;
  for (int64_t i = 0; i < b.numel(); ++i) scale = std::max(scale, std::fabs(pb[i]));
  return max_abs_diff(a, b) <= atol + rtol * scale;
}

}  // namespace hfta::ops
