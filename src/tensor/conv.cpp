#include "tensor/conv.h"

#include <cstring>
#include <vector>

#include "core/parallel.h"
#include "core/storage_pool.h"
#include "core/vec.h"
#include "tensor/matmul.h"
#include "tensor/ops.h"

namespace hfta::ops {

int64_t conv_out_size(int64_t in, int64_t kernel, int64_t stride, int64_t pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

int64_t conv_transpose_out_size(int64_t in, int64_t kernel, int64_t stride,
                                int64_t pad, int64_t out_pad) {
  return (in - 1) * stride - 2 * pad + kernel + out_pad;
}

namespace {

// Unfolds the [C, H, W] block at `x` into cols [C*kh*kw, Ho*Wo].
void im2col(const float* x, int64_t C, int64_t H, int64_t W, int64_t kh,
            int64_t kw, int64_t sh, int64_t sw, int64_t ph, int64_t pw,
            int64_t Ho, int64_t Wo, float* cols) {
  for (int64_t c = 0; c < C; ++c) {
    for (int64_t i = 0; i < kh; ++i) {
      for (int64_t j = 0; j < kw; ++j) {
        float* row = cols + ((c * kh + i) * kw + j) * Ho * Wo;
        for (int64_t oh = 0; oh < Ho; ++oh) {
          const int64_t ih = oh * sh - ph + i;
          if (ih < 0 || ih >= H) {
            std::memset(row + oh * Wo, 0, sizeof(float) * static_cast<size_t>(Wo));
            continue;
          }
          const float* src = x + (c * H + ih) * W;
          for (int64_t ow = 0; ow < Wo; ++ow) {
            const int64_t iw = ow * sw - pw + j;
            row[oh * Wo + ow] = (iw >= 0 && iw < W) ? src[iw] : 0.f;
          }
        }
      }
    }
  }
}

// Adjoint of im2col: accumulates cols [C*kh*kw, Ho*Wo] back into the
// [C, H, W] block at `x`.
void col2im(const float* cols, int64_t C, int64_t H, int64_t W, int64_t kh,
            int64_t kw, int64_t sh, int64_t sw, int64_t ph, int64_t pw,
            int64_t Ho, int64_t Wo, float* x) {
  for (int64_t c = 0; c < C; ++c) {
    for (int64_t i = 0; i < kh; ++i) {
      for (int64_t j = 0; j < kw; ++j) {
        const float* row = cols + ((c * kh + i) * kw + j) * Ho * Wo;
        for (int64_t oh = 0; oh < Ho; ++oh) {
          const int64_t ih = oh * sh - ph + i;
          if (ih < 0 || ih >= H) continue;
          float* dst = x + (c * H + ih) * W;
          for (int64_t ow = 0; ow < Wo; ++ow) {
            const int64_t iw = ow * sw - pw + j;
            if (iw >= 0 && iw < W) dst[iw] += row[oh * Wo + ow];
          }
        }
      }
    }
  }
}

struct ConvDims {
  int64_t N, Cin, H, W, Cout, Cing, Coutg, kh, kw, Ho, Wo;
};

ConvDims check_conv(const Shape& x_shape, const Shape& w_shape,
                    const ConvArgs& a) {
  HFTA_CHECK(x_shape.size() == 4, "conv2d: x must be 4-D, got ",
             shape_str(x_shape));
  HFTA_CHECK(w_shape.size() == 4, "conv2d: w must be 4-D, got ",
             shape_str(w_shape));
  ConvDims d;
  d.N = x_shape[0];
  d.Cin = x_shape[1];
  d.H = x_shape[2];
  d.W = x_shape[3];
  d.Cout = w_shape[0];
  d.kh = w_shape[2];
  d.kw = w_shape[3];
  HFTA_CHECK(a.groups >= 1 && d.Cin % a.groups == 0 && d.Cout % a.groups == 0,
             "conv2d: Cin ", d.Cin, " / Cout ", d.Cout,
             " not divisible by groups ", a.groups);
  d.Cing = d.Cin / a.groups;
  d.Coutg = d.Cout / a.groups;
  HFTA_CHECK(w_shape[1] == d.Cing, "conv2d: w Cin/g ", w_shape[1], " != ",
             d.Cing);
  d.Ho = conv_out_size(d.H, d.kh, a.stride_h, a.pad_h);
  d.Wo = conv_out_size(d.W, d.kw, a.stride_w, a.pad_w);
  HFTA_CHECK(d.Ho > 0 && d.Wo > 0, "conv2d: empty output ", d.Ho, "x", d.Wo);
  return d;
}

}  // namespace

// The three 2-D entry points below widen half-precision operands to f32 on
// the launching thread and accumulate in f32 (the AMP compute policy); the
// 1-D and transposed variants all funnel through them. as_f32 is the
// identity for f32 inputs.
Tensor conv2d(const Tensor& x_in, const Tensor& w_in, const Tensor& b,
              const ConvArgs& a) {
  const Tensor x = as_f32(x_in), w = as_f32(w_in);
  const ConvDims d = check_conv(x.shape(), w.shape(), a);
  if (b.defined())
    HFTA_CHECK(b.numel() == d.Cout, "conv2d: bias numel ", b.numel(), " != ",
               d.Cout);
  Tensor y = Tensor::empty({d.N, d.Cout, d.Ho, d.Wo});
  const int64_t col_rows = d.Cing * d.kh * d.kw;
  const int64_t spatial = d.Ho * d.Wo;
  const float* px = x.data();
  const float* pw = w.data();
  const float* pb = b.defined() ? b.data() : nullptr;
  float* py = y.data();

  // One im2col + gemm-packing slab for the whole launch, acquired on the
  // launching thread (a chunk's scratch lives at its chunk index); pool
  // traffic from inside the body would make warm-pool state depend on
  // chunk->lane scheduling.
  const Partition part = Partition::rows(d.N);
  const int64_t gemm_fl = gemm_scratch_floats(d.Coutg, spatial, col_rows);
  const int64_t scratch = col_rows * spatial + gemm_fl;
  PooledBuffer cols_all(part.num_chunks() * scratch);
  float* pcols = cols_all.data();
  parallel_for(part, [&](int64_t lo, int64_t hi) {
    float* cols = pcols + part.chunk_index(lo) * scratch;
    float* gs = cols + col_rows * spatial;
    for (int64_t n = lo; n < hi; ++n) {
      for (int64_t g = 0; g < a.groups; ++g) {
        const float* xg = px + (n * d.Cin + g * d.Cing) * d.H * d.W;
        im2col(xg, d.Cing, d.H, d.W, d.kh, d.kw, a.stride_h, a.stride_w,
               a.pad_h, a.pad_w, d.Ho, d.Wo, cols);
        float* yg = py + (n * d.Cout + g * d.Coutg) * spatial;
        // [Coutg, col_rows] @ [col_rows, spatial]
        gemm(pw + g * d.Coutg * col_rows, cols, yg, d.Coutg, spatial,
             col_rows, false, false, 1.f, 0.f, gs);
        if (pb) {
          for (int64_t c = 0; c < d.Coutg; ++c) {
            float* row = yg + c * spatial;
            vec::unary(vec::UnOp::kAddScalar, pb[g * d.Coutg + c], 0.f, row,
                       row, spatial);
          }
        }
      }
    }
  });
  return y;
}

Tensor conv2d_grad_input(const Tensor& gy_in, const Tensor& w_in,
                         const Shape& x_shape, const ConvArgs& a) {
  const Tensor gy = as_f32(gy_in), w = as_f32(w_in);
  const ConvDims d = check_conv(x_shape, w.shape(), a);
  HFTA_CHECK(gy.size(0) == d.N && gy.size(1) == d.Cout && gy.size(2) == d.Ho &&
                 gy.size(3) == d.Wo,
             "conv2d_grad_input: gy shape ", shape_str(gy.shape()));
  Tensor gx(x_shape);
  const int64_t col_rows = d.Cing * d.kh * d.kw;
  const int64_t spatial = d.Ho * d.Wo;
  const float* pgy = gy.data();
  const float* pw = w.data();
  float* pgx = gx.data();

  // All scratch is acquired here, on the launching thread: per-chunk slots
  // holding the im2col slab plus the gemm packing area. The weight transpose
  // is absorbed by the packed kernel's TN path (pack_a transposes while
  // packing) — the old materialized W^T slab is gone.
  const Partition part = Partition::rows(d.N);
  const int64_t gemm_fl = gemm_scratch_floats(col_rows, spatial, d.Coutg);
  const int64_t scratch = col_rows * spatial + gemm_fl;
  PooledBuffer cols_all(part.num_chunks() * scratch);
  float* pcols = cols_all.data();
  parallel_for(part, [&](int64_t lo, int64_t hi) {
    float* cols = pcols + part.chunk_index(lo) * scratch;
    float* gs = cols + col_rows * spatial;
    for (int64_t n = lo; n < hi; ++n) {
      for (int64_t g = 0; g < a.groups; ++g) {
        const float* gyg = pgy + (n * d.Cout + g * d.Coutg) * spatial;
        // cols = Wg^T [col_rows, Coutg] @ gy [Coutg, spatial]
        gemm(pw + g * d.Coutg * col_rows, gyg, cols, col_rows, spatial,
             d.Coutg, true, false, 1.f, 0.f, gs);
        float* xg = pgx + (n * d.Cin + g * d.Cing) * d.H * d.W;
        col2im(cols, d.Cing, d.H, d.W, d.kh, d.kw, a.stride_h,
               a.stride_w, a.pad_h, a.pad_w, d.Ho, d.Wo, xg);
      }
    }
  });
  return gx;
}

Tensor conv2d_grad_weight(const Tensor& gy_in, const Tensor& x_in,
                          const Shape& w_shape, const ConvArgs& a) {
  const Tensor gy = as_f32(gy_in), x = as_f32(x_in);
  const ConvDims d = check_conv(x.shape(), w_shape, a);
  Tensor gw(w_shape);
  const int64_t col_rows = d.Cing * d.kh * d.kw;
  const int64_t spatial = d.Ho * d.Wo;
  const float* px = x.data();
  const float* pgy = gy.data();
  float* pgw = gw.data();

  // Parallel over groups (race-free: each group owns a weight slice); fused
  // workloads have many groups. For groups == 1 the inner GEMM itself is the
  // dominant cost and still benefits from vectorization.
  // Per-chunk slots (im2col slab + gemm packing area) acquired up front on
  // the launching thread — no pool traffic inside the body.
  const Partition part = Partition::rows(a.groups);
  const int64_t gemm_fl = gemm_scratch_floats(d.Coutg, col_rows, spatial);
  const int64_t scratch = col_rows * spatial + gemm_fl;
  PooledBuffer cols_all(part.num_chunks() * scratch);
  float* pcols = cols_all.data();
  parallel_for(part, [&](int64_t glo, int64_t ghi) {
    float* cols = pcols + part.chunk_index(glo) * scratch;
    float* gs = cols + col_rows * spatial;
    for (int64_t g = glo; g < ghi; ++g) {
      float* gwg = pgw + g * d.Coutg * col_rows;
      for (int64_t n = 0; n < d.N; ++n) {
        const float* xg = px + (n * d.Cin + g * d.Cing) * d.H * d.W;
        im2col(xg, d.Cing, d.H, d.W, d.kh, d.kw, a.stride_h, a.stride_w,
               a.pad_h, a.pad_w, d.Ho, d.Wo, cols);
        const float* gyg = pgy + (n * d.Cout + g * d.Coutg) * spatial;
        // gW += gy [Coutg, spatial] @ cols^T [spatial, col_rows]
        gemm(gyg, cols, gwg, d.Coutg, col_rows, spatial, false, true,
             1.f, 1.f, gs);
      }
    }
  });
  return gw;
}

Tensor conv2d_grad_bias(const Tensor& gy) {
  const int64_t N = gy.size(0);
  const int64_t C = gy.size(1);
  const int64_t spatial = gy.numel() / (N * C);
  Tensor gb = Tensor::empty({C});
  const float* p = gy.data();
  float* pb = gb.data();
  // Output-channel parallel. Each channel's accumulation chain — a
  // per-plane partial (s ascending) folded in for n ascending — is exactly
  // the serial one, so the result is bit-identical at any thread count.
  parallel_for(Partition::rows(C), [&](int64_t lo, int64_t hi) {
    for (int64_t c = lo; c < hi; ++c) {
      float total = 0.f;
      for (int64_t n = 0; n < N; ++n) {
        const float* row = p + (n * C + c) * spatial;
        float acc = 0.f;
        for (int64_t s = 0; s < spatial; ++s) acc += row[s];
        total += acc;
      }
      pb[c] = total;
    }
  });
  return gb;
}

// ---- conv1d (lowered to conv2d with H = 1) ---------------------------------

namespace {
Shape as4d_x(const Shape& s) { return {s[0], s[1], 1, s[2]}; }
Shape as4d_w(const Shape& s) { return {s[0], s[1], 1, s[2]}; }
Shape as3d(const Shape& s) { return {s[0], s[1], s[3]}; }
}  // namespace

Tensor conv1d(const Tensor& x, const Tensor& w, const Tensor& b,
              int64_t stride, int64_t pad, int64_t groups) {
  HFTA_CHECK(x.dim() == 3 && w.dim() == 3, "conv1d: x [N,C,L], w [Co,Ci/g,k]");
  ConvArgs a{1, stride, 0, pad, groups};
  Tensor y = conv2d(x.reshape(as4d_x(x.shape())), w.reshape(as4d_w(w.shape())),
                    b, a);
  return y.reshape(as3d(y.shape()));
}

Tensor conv1d_grad_input(const Tensor& gy, const Tensor& w,
                         const Shape& x_shape, int64_t stride, int64_t pad,
                         int64_t groups) {
  ConvArgs a{1, stride, 0, pad, groups};
  Tensor gx = conv2d_grad_input(gy.reshape(as4d_x(gy.shape())),
                                w.reshape(as4d_w(w.shape())),
                                as4d_x(x_shape), a);
  return gx.reshape(as3d(gx.shape()));
}

Tensor conv1d_grad_weight(const Tensor& gy, const Tensor& x,
                          const Shape& w_shape, int64_t stride, int64_t pad,
                          int64_t groups) {
  ConvArgs a{1, stride, 0, pad, groups};
  Tensor gw = conv2d_grad_weight(gy.reshape(as4d_x(gy.shape())),
                                 x.reshape(as4d_x(x.shape())),
                                 as4d_w(w_shape), a);
  return gw.reshape(w_shape);
}

// ---- conv_transpose2d (via conv/conv-grad duality) ---------------------------

Tensor conv_transpose2d(const Tensor& x, const Tensor& w, const Tensor& b,
                        const ConvTransposeArgs& t) {
  HFTA_CHECK(x.dim() == 4 && w.dim() == 4,
             "conv_transpose2d: x [N,Ci,H,W], w [Ci,Co/g,kh,kw]");
  HFTA_CHECK(t.out_pad < t.stride, "conv_transpose2d: out_pad must be < stride");
  const int64_t N = x.size(0);
  const int64_t Cin = x.size(1);
  HFTA_CHECK(w.size(0) == Cin, "conv_transpose2d: w Cin mismatch");
  const int64_t Cout = w.size(1) * t.groups;
  const int64_t kh = w.size(2);
  const int64_t kw = w.size(3);
  const int64_t Ho = conv_transpose_out_size(x.size(2), kh, t.stride, t.pad,
                                             t.out_pad);
  const int64_t Wo = conv_transpose_out_size(x.size(3), kw, t.stride, t.pad,
                                             t.out_pad);
  // convT(x, w) == conv_grad_input treating x as the conv's output gradient:
  // the underlying conv maps [N, Cout, Ho, Wo] -> [N, Cin, H, W].
  const ConvArgs a{t.stride, t.stride, t.pad, t.pad, t.groups};
  Tensor y = conv2d_grad_input(x, w, {N, Cout, Ho, Wo}, a);
  if (b.defined()) {
    HFTA_CHECK(b.numel() == Cout, "conv_transpose2d: bias mismatch");
    float* py = y.data();
    const float* pb = b.data();
    const int64_t spatial = Ho * Wo;
    for (int64_t n = 0; n < N; ++n)
      for (int64_t c = 0; c < Cout; ++c) {
        float* row = py + (n * Cout + c) * spatial;
        for (int64_t s = 0; s < spatial; ++s) row[s] += pb[c];
      }
  }
  return y;
}

Tensor conv_transpose2d_grad_input(const Tensor& gy, const Tensor& w,
                                   const ConvTransposeArgs& t) {
  // Adjoint of conv_grad_input is conv forward.
  const ConvArgs a{t.stride, t.stride, t.pad, t.pad, t.groups};
  return conv2d(gy, w, Tensor(), a);
}

Tensor conv_transpose2d_grad_weight(const Tensor& gy, const Tensor& x,
                                    const Shape& w_shape,
                                    const ConvTransposeArgs& t) {
  // Roles swap: the convT input x plays the conv's grad_output, the convT
  // output gradient gy plays the conv's input.
  const ConvArgs a{t.stride, t.stride, t.pad, t.pad, t.groups};
  return conv2d_grad_weight(x, gy, w_shape, a);
}

// The 1-D lowering keeps the dummy H axis at stride 1 / pad 0, so it goes
// through the conv/conv-grad duality directly rather than through
// conv_transpose2d (whose scalar stride/pad apply to both axes).
Tensor conv_transpose1d(const Tensor& x, const Tensor& w, const Tensor& b,
                        const ConvTransposeArgs& t) {
  HFTA_CHECK(x.dim() == 3 && w.dim() == 3,
             "conv_transpose1d: x [N,Ci,L], w [Ci,Co/g,k]");
  HFTA_CHECK(t.out_pad < t.stride, "conv_transpose1d: out_pad must be < stride");
  const int64_t N = x.size(0);
  const int64_t Cout = w.size(1) * t.groups;
  const int64_t k = w.size(2);
  const int64_t Lo =
      conv_transpose_out_size(x.size(2), k, t.stride, t.pad, t.out_pad);
  const ConvArgs a{1, t.stride, 0, t.pad, t.groups};
  Tensor y = conv2d_grad_input(x.reshape(as4d_x(x.shape())),
                               w.reshape(as4d_w(w.shape())),
                               {N, Cout, 1, Lo}, a);
  y = y.reshape(as3d(y.shape()));
  if (b.defined()) {
    HFTA_CHECK(b.numel() == Cout, "conv_transpose1d: bias mismatch");
    float* py = y.data();
    const float* pb = b.data();
    for (int64_t n = 0; n < N; ++n)
      for (int64_t c = 0; c < Cout; ++c) {
        float* row = py + (n * Cout + c) * Lo;
        for (int64_t l = 0; l < Lo; ++l) row[l] += pb[c];
      }
  }
  return y;
}

Tensor conv_transpose1d_grad_input(const Tensor& gy, const Tensor& w,
                                   const ConvTransposeArgs& t) {
  const ConvArgs a{1, t.stride, 0, t.pad, t.groups};
  Tensor gx = conv2d(gy.reshape(as4d_x(gy.shape())),
                     w.reshape(as4d_w(w.shape())), Tensor(), a);
  return gx.reshape(as3d(gx.shape()));
}

Tensor conv_transpose1d_grad_weight(const Tensor& gy, const Tensor& x,
                                    const Shape& w_shape,
                                    const ConvTransposeArgs& t) {
  const ConvArgs a{1, t.stride, 0, t.pad, t.groups};
  Tensor gw = conv2d_grad_weight(x.reshape(as4d_x(x.shape())),
                                 gy.reshape(as4d_x(gy.shape())),
                                 as4d_w(w_shape), a);
  return gw.reshape(w_shape);
}

}  // namespace hfta::ops
