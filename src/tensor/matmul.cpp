#include "tensor/matmul.h"

#include "core/parallel.h"
#include "core/storage_pool.h"
#include "core/vec.h"
#include "tensor/ops.h"

namespace hfta::ops {

// Every GEMM variant in the repo — matmul / matmul_tn / matmul_nt, the bmm
// family, and the raw gemm the conv kernels drive — lowers onto the ONE
// packed cache-blocked kernel in core/vec: transposes are absorbed by the
// packing (no materialized transpose-copies anywhere), and each output
// element is a single k-ascending fma chain seeded with its beta term. The
// plain layers reduce through exactly the same kernel as their fused
// counterparts, which is what keeps fused training bit-equal to the B
// serial runs (integration_test) — previously that took two hand-matched
// scalar kernels (gemm_nn / gemm_nt); now it is true by construction.
//
// Half-precision operands are packed DIRECTLY from their 16-bit storage
// (widened in the pack loop, bit-identical to ops::as_f32 + pack), and an
// f32 operand with a quantize policy (qa/qb) is quantized RNE to the half
// format inside the pack loop (bit-identical to casting it to 16-bit
// storage first): the AMP path runs with no cast tensors and no separate
// widening pass at all, while still accumulating in f32.

namespace {

vec::PackType pack_type(DType d, DType q) {
  switch (d) {
    case DType::kF16: return vec::PackType::kF16;
    case DType::kBF16: return vec::PackType::kBF16;
    default:
      // f32 storage: the policy decides whether the pack loop quantizes.
      switch (q) {
        case DType::kF16: return vec::PackType::kF32QF16;
        case DType::kBF16: return vec::PackType::kF32QBF16;
        default: return vec::PackType::kF32;
      }
  }
}

const void* raw_ptr(const Tensor& t) {
  return t.dtype() == DType::kF32
             ? static_cast<const void*>(t.data())
             : static_cast<const void*>(t.data_u16());
}

void gemm_tensors(const Tensor& a, const Tensor& b, float* c, int64_t m,
                  int64_t n, int64_t k, bool trans_a, bool trans_b, DType qa,
                  DType qb, float* scratch = nullptr) {
  vec::GemmArgs g;
  g.a = raw_ptr(a);
  g.a_type = pack_type(a.dtype(), qa);
  g.trans_a = trans_a;
  g.b = raw_ptr(b);
  g.b_type = pack_type(b.dtype(), qb);
  g.trans_b = trans_b;
  g.c = c;
  g.m = m;
  g.n = n;
  g.k = k;
  g.scratch = scratch;
  vec::gemm(g);
}

}  // namespace

void gemm(const float* a, const float* b, float* c, int64_t m, int64_t n,
          int64_t k, bool trans_a, bool trans_b, float alpha, float beta,
          float* scratch) {
  vec::GemmArgs g;
  g.a = a;
  g.trans_a = trans_a;
  g.b = b;
  g.trans_b = trans_b;
  g.c = c;
  g.m = m;
  g.n = n;
  g.k = k;
  g.alpha = alpha;
  g.beta = beta;
  g.scratch = scratch;
  vec::gemm(g);
}

int64_t gemm_scratch_floats(int64_t m, int64_t n, int64_t k) {
  return vec::gemm_scratch_floats(m, n, k);
}

Tensor matmul(const Tensor& a, const Tensor& b, DType qa, DType qb) {
  HFTA_CHECK(a.dim() == 2 && b.dim() == 2 && a.size(1) == b.size(0),
             "matmul: ", shape_str(a.shape()), " @ ", shape_str(b.shape()));
  Tensor c = Tensor::empty({a.size(0), b.size(1)});
  gemm_tensors(a, b, c.data(), a.size(0), b.size(1), a.size(1), false, false,
               qa, qb);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b, DType qa, DType qb) {
  HFTA_CHECK(a.dim() == 2 && b.dim() == 2 && a.size(0) == b.size(0),
             "matmul_tn: ", shape_str(a.shape()), " @ ", shape_str(b.shape()));
  Tensor c = Tensor::empty({a.size(1), b.size(1)});
  gemm_tensors(a, b, c.data(), a.size(1), b.size(1), a.size(0), true, false,
               qa, qb);
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b, DType qa, DType qb) {
  HFTA_CHECK(a.dim() == 2 && b.dim() == 2 && a.size(1) == b.size(1),
             "matmul_nt: ", shape_str(a.shape()), " @ ", shape_str(b.shape()));
  Tensor c = Tensor::empty({a.size(0), b.size(0)});
  gemm_tensors(a, b, c.data(), a.size(0), b.size(0), a.size(1), false, true,
               qa, qb);
  return c;
}

namespace {
Tensor bmm_impl(const Tensor& a, const Tensor& b, bool ta, bool tb, DType qa,
                DType qb) {
  HFTA_CHECK(a.dim() == 3 && b.dim() == 3 && a.size(0) == b.size(0),
             "bmm: ", shape_str(a.shape()), " @ ", shape_str(b.shape()));
  const int64_t B = a.size(0);
  const int64_t m = ta ? a.size(2) : a.size(1);
  const int64_t ka = ta ? a.size(1) : a.size(2);
  const int64_t kb = tb ? b.size(2) : b.size(1);
  const int64_t n = tb ? b.size(1) : b.size(2);
  HFTA_CHECK(ka == kb, "bmm: inner dim mismatch ", ka, " vs ", kb);
  Tensor c = Tensor::empty({B, m, n});
  const int64_t a_bytes = a.size(1) * a.size(2) * dtype_size(a.dtype());
  const int64_t b_bytes = b.size(1) * b.size(2) * dtype_size(b.dtype());
  // One packing-scratch slot per partition chunk, acquired HERE on the
  // launching thread (DESIGN §10): entries within a chunk run serially and
  // reuse their chunk's slot, so the slab size is a pure function of the
  // problem size and warm-pool state cannot depend on scheduling. The
  // packed-panel path also absorbs both transposes — the old per-batch
  // materialized aT slab is gone.
  const Partition part = Partition::rows(B);
  const int64_t slot = vec::gemm_scratch_floats(m, n, ka);
  PooledBuffer scratch(part.num_chunks() * slot);
  float* ps = scratch.data();
  const char* pa = static_cast<const char*>(raw_ptr(a));
  const char* pb = static_cast<const char*>(raw_ptr(b));
  float* pc = c.data();
  vec::GemmArgs g;
  g.a_type = pack_type(a.dtype(), qa);
  g.trans_a = ta;
  g.b_type = pack_type(b.dtype(), qb);
  g.trans_b = tb;
  g.m = m;
  g.n = n;
  g.k = ka;
  // Parallelize across batch entries; the per-matrix gemm runs inline when
  // called from the pool (no nested parallelism).
  parallel_for(part, [&](int64_t lo, int64_t hi) {
    vec::GemmArgs gi = g;
    gi.scratch = ps + part.chunk_index(lo) * slot;
    for (int64_t i = lo; i < hi; ++i) {
      gi.a = pa + i * a_bytes;
      gi.b = pb + i * b_bytes;
      gi.c = pc + i * m * n;
      vec::gemm(gi);
    }
  });
  return c;
}
}  // namespace

Tensor bmm(const Tensor& a, const Tensor& b, DType qa, DType qb) {
  return bmm_impl(a, b, false, false, qa, qb);
}
Tensor bmm_tn(const Tensor& a, const Tensor& b, DType qa, DType qb) {
  return bmm_impl(a, b, true, false, qa, qb);
}
Tensor bmm_nt(const Tensor& a, const Tensor& b, DType qa, DType qb) {
  return bmm_impl(a, b, false, true, qa, qb);
}

Tensor baddbmm(const Tensor& bias, const Tensor& a, const Tensor& b, DType qa,
               DType qb) {
  Tensor c = bmm(a, b, qa, qb);
  return ops::add(c, bias);
}

Tensor linear_forward(const Tensor& x, const Tensor& w, const Tensor& b,
                      DType qx, DType qw) {
  HFTA_CHECK(w.dim() == 2, "linear: weight must be [out, in]");
  const int64_t in = w.size(1);
  const int64_t out = w.size(0);
  HFTA_CHECK(x.size(-1) == in, "linear: input feature ", x.size(-1),
             " != weight in ", in);
  const int64_t rows = x.numel() / in;
  Tensor x2 = x.reshape({rows, in});
  Tensor y = matmul_nt(x2, w, qx, qw);  // [rows, out]
  if (b.defined()) {
    HFTA_CHECK(b.numel() == out, "linear: bias size mismatch");
    float* py = y.data();
    const float* pb = b.data();
    // Output-row parallel: each row's adds are independent of every other
    // row's, so the decomposition cannot change any result bit.
    parallel_for(Partition::rows(rows), [&](int64_t lo, int64_t hi) {
      for (int64_t r = lo; r < hi; ++r)
        vec::binary(vec::BinOp::kAdd, py + r * out, pb, py + r * out, out);
    });
  }
  Shape out_shape = x.shape();
  out_shape.back() = out;
  return y.reshape(out_shape);
}

}  // namespace hfta::ops
