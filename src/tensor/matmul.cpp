#include "tensor/matmul.h"

#include <cstring>

#include "core/storage_pool.h"

#include "core/parallel.h"
#include "tensor/ops.h"

namespace hfta::ops {

namespace {

// Core row-parallel kernel: C[M,N] = alpha * A@B (+ beta*C), A row-major
// [M,K], B row-major [K,N]. i-k-j loop order keeps the inner loop
// unit-stride over both B and C so the compiler can vectorize it.
void gemm_nn(const float* a, const float* b, float* c, int64_t m, int64_t n,
             int64_t k, float alpha, float beta) {
  parallel_for(Partition::rows(m), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      float* crow = c + i * n;
      if (beta == 0.f) {
        std::memset(crow, 0, sizeof(float) * static_cast<size_t>(n));
      } else if (beta != 1.f) {
        for (int64_t j = 0; j < n; ++j) crow[j] *= beta;
      }
      const float* arow = a + i * k;
      for (int64_t p = 0; p < k; ++p) {
        const float av = alpha * arow[p];
        if (av == 0.f) continue;
        const float* brow = b + p * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

// NT kernel: C[M,N] = alpha * A @ B^T (+ beta*C), A row-major [M,K],
// B row-major [N,K]. Rows of A and B are both unit-stride, so the dot
// products need no materialized transpose — this is the common case
// (linear_forward, attention scores, bmm_nt), where the O(KN) copy and its
// cache-cold column walk actually show up.
//
// CAUTION: each dot product must accumulate exactly like gemm_nn (start
// from beta*C, then add (alpha*a[p])*b[p] for p ascending in ONE chain,
// skipping av == 0). The plain layers reduce over k through this kernel
// while their fused counterparts reduce through gemm_nn; keeping the float
// summation order identical is what makes fused training bit-equal to the
// B serial runs (integration_test). Speed comes from four independent
// column chains per pass, not from splitting the reduction.
void gemm_nt(const float* a, const float* b, float* c, int64_t m, int64_t n,
             int64_t k, float alpha, float beta) {
  parallel_for(Partition::rows(m), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      int64_t j = 0;
      for (; j + 4 <= n; j += 4) {
        const float* b0 = b + j * k;
        const float* b1 = b0 + k;
        const float* b2 = b1 + k;
        const float* b3 = b2 + k;
        float acc0 = beta == 0.f ? 0.f : beta * crow[j];
        float acc1 = beta == 0.f ? 0.f : beta * crow[j + 1];
        float acc2 = beta == 0.f ? 0.f : beta * crow[j + 2];
        float acc3 = beta == 0.f ? 0.f : beta * crow[j + 3];
        for (int64_t p = 0; p < k; ++p) {
          const float av = alpha * arow[p];
          if (av == 0.f) continue;
          acc0 += av * b0[p];
          acc1 += av * b1[p];
          acc2 += av * b2[p];
          acc3 += av * b3[p];
        }
        crow[j] = acc0;
        crow[j + 1] = acc1;
        crow[j + 2] = acc2;
        crow[j + 3] = acc3;
      }
      for (; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = beta == 0.f ? 0.f : beta * crow[j];
        for (int64_t p = 0; p < k; ++p) {
          const float av = alpha * arow[p];
          if (av == 0.f) continue;
          acc += av * brow[p];
        }
        crow[j] = acc;
      }
    }
  });
}

// Materializes the transpose of a row-major [r, c] matrix into pooled
// scratch (every entry is written, so the buffer stays uninitialized).
PooledBuffer transpose_copy(const float* src, int64_t r, int64_t c) {
  PooledBuffer out(r * c);
  float* po = out.data();
  for (int64_t i = 0; i < r; ++i)
    for (int64_t j = 0; j < c; ++j) po[j * r + i] = src[i * c + j];
  return out;
}

}  // namespace

void gemm(const float* a, const float* b, float* c, int64_t m, int64_t n,
          int64_t k, bool trans_a, bool trans_b, float alpha, float beta) {
  if (trans_b && !trans_a) {
    gemm_nt(a, b, c, m, n, k, alpha, beta);
    return;
  }
  // Normalize the remaining cases to NN by materializing transposed
  // operands; the O(MK) copy is negligible next to the O(MNK) product at
  // our sizes.
  PooledBuffer at, bt;
  if (trans_a) {
    at = transpose_copy(a, k, m);  // stored as [K, M] -> want [M, K]
    a = at.data();
  }
  if (trans_b) {
    bt = transpose_copy(b, n, k);  // stored as [N, K] -> want [K, N]
    b = bt.data();
  }
  gemm_nn(a, b, c, m, n, k, alpha, beta);
}

// Every GEMM widens half-precision operands to f32 here, at entry on the
// launching thread, and accumulates in f32 — the AMP compute policy. The
// widened scratch is pool-backed (a pool hit when warm) and as_f32 is the
// identity for f32 inputs, so the fp32 path is untouched.
Tensor matmul(const Tensor& a_in, const Tensor& b_in) {
  const Tensor a = as_f32(a_in), b = as_f32(b_in);
  HFTA_CHECK(a.dim() == 2 && b.dim() == 2 && a.size(1) == b.size(0),
             "matmul: ", shape_str(a.shape()), " @ ", shape_str(b.shape()));
  Tensor c = Tensor::empty({a.size(0), b.size(1)});
  gemm(a.data(), b.data(), c.data(), a.size(0), b.size(1), a.size(1), false,
       false);
  return c;
}

Tensor matmul_tn(const Tensor& a_in, const Tensor& b_in) {
  const Tensor a = as_f32(a_in), b = as_f32(b_in);
  HFTA_CHECK(a.dim() == 2 && b.dim() == 2 && a.size(0) == b.size(0),
             "matmul_tn: ", shape_str(a.shape()), " @ ", shape_str(b.shape()));
  Tensor c = Tensor::empty({a.size(1), b.size(1)});
  gemm(a.data(), b.data(), c.data(), a.size(1), b.size(1), a.size(0), true,
       false);
  return c;
}

Tensor matmul_nt(const Tensor& a_in, const Tensor& b_in) {
  const Tensor a = as_f32(a_in), b = as_f32(b_in);
  HFTA_CHECK(a.dim() == 2 && b.dim() == 2 && a.size(1) == b.size(1),
             "matmul_nt: ", shape_str(a.shape()), " @ ", shape_str(b.shape()));
  Tensor c = Tensor::empty({a.size(0), b.size(0)});
  gemm(a.data(), b.data(), c.data(), a.size(0), b.size(0), a.size(1), false,
       true);
  return c;
}

namespace {
Tensor bmm_impl(const Tensor& a_in, const Tensor& b_in, bool ta, bool tb) {
  const Tensor a = as_f32(a_in), b = as_f32(b_in);
  HFTA_CHECK(a.dim() == 3 && b.dim() == 3 && a.size(0) == b.size(0),
             "bmm: ", shape_str(a.shape()), " @ ", shape_str(b.shape()));
  const int64_t B = a.size(0);
  const int64_t m = ta ? a.size(2) : a.size(1);
  const int64_t ka = ta ? a.size(1) : a.size(2);
  const int64_t kb = tb ? b.size(2) : b.size(1);
  const int64_t n = tb ? b.size(1) : b.size(2);
  HFTA_CHECK(ka == kb, "bmm: inner dim mismatch ", ka, " vs ", kb);
  Tensor c = Tensor::empty({B, m, n});
  const int64_t a_sz = a.size(1) * a.size(2);
  const int64_t b_sz = b.size(1) * b.size(2);
  // When A is transposed, the whole aᵀ batch goes in one slab acquired here
  // on the launching thread; the per-entry transposes below write disjoint
  // slots. Calling gemm's TN path from inside the body instead would
  // acquire transpose scratch on whichever worker ran the chunk, and
  // warm-pool state would depend on scheduling. (trans_b needs no scratch:
  // gemm has a native NT path.)
  PooledBuffer at;
  if (ta) at = PooledBuffer(B * a_sz);
  float* pat = ta ? at.data() : nullptr;
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Parallelize across batch entries; the per-matrix gemm runs inline when
  // called from the pool (no nested parallelism).
  parallel_for(Partition::rows(B), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* ai = pa + i * a_sz;
      if (ta) {
        // a_i is stored [ka, m]; materialize [m, ka] in this entry's slot.
        float* t = pat + i * a_sz;
        for (int64_t r = 0; r < ka; ++r)
          for (int64_t j = 0; j < m; ++j) t[j * ka + r] = ai[r * m + j];
        ai = t;
      }
      gemm(ai, pb + i * b_sz, pc + i * m * n, m, n, ka, false, tb);
    }
  });
  return c;
}
}  // namespace

Tensor bmm(const Tensor& a, const Tensor& b) { return bmm_impl(a, b, false, false); }
Tensor bmm_tn(const Tensor& a, const Tensor& b) { return bmm_impl(a, b, true, false); }
Tensor bmm_nt(const Tensor& a, const Tensor& b) { return bmm_impl(a, b, false, true); }

Tensor baddbmm(const Tensor& bias, const Tensor& a, const Tensor& b) {
  Tensor c = bmm(a, b);
  return ops::add(c, bias);
}

Tensor linear_forward(const Tensor& x, const Tensor& w, const Tensor& b) {
  HFTA_CHECK(w.dim() == 2, "linear: weight must be [out, in]");
  const int64_t in = w.size(1);
  const int64_t out = w.size(0);
  HFTA_CHECK(x.size(-1) == in, "linear: input feature ", x.size(-1),
             " != weight in ", in);
  const int64_t rows = x.numel() / in;
  Tensor x2 = x.reshape({rows, in});
  Tensor y = matmul_nt(x2, w);  // [rows, out]
  if (b.defined()) {
    HFTA_CHECK(b.numel() == out, "linear: bias size mismatch");
    float* py = y.data();
    const float* pb = b.data();
    // Output-row parallel: each row's adds are independent of every other
    // row's, so the decomposition cannot change any result bit.
    parallel_for(Partition::rows(rows), [&](int64_t lo, int64_t hi) {
      for (int64_t r = lo; r < hi; ++r)
        for (int64_t o = 0; o < out; ++o) py[r * out + o] += pb[o];
    });
  }
  Shape out_shape = x.shape();
  out_shape.back() = out;
  return y.reshape(out_shape);
}

}  // namespace hfta::ops
