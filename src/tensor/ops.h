// Non-differentiable tensor kernels: elementwise (with full numpy-style
// broadcasting), reductions, shape ops, softmax, embedding lookup.
// The autograd layer (src/autograd) wraps these with backward rules.
#pragma once

#include <utility>
#include <vector>

#include "core/function_ref.h"
#include "tensor/tensor.h"

namespace hfta::ops {

// ---- dtype -----------------------------------------------------------------

/// Converted copy at `dt` (RNE when narrowing; identity when dtype already
/// matches). The autograd layer wraps this as ag::cast.
inline Tensor cast(const Tensor& a, DType dt) { return a.to(dt); }

/// Widens f16/bf16 to f32 (identity for f32 inputs). GEMM/conv kernels call
/// this on every tensor operand at entry — that single choke point is what
/// implements "fp32-accumulate from low-precision inputs" without teaching
/// the inner loops about element types. The widened scratch comes from the
/// pool (a pool hit when warm, not a heap allocation) and is acquired on the
/// launching thread, before any parallel_for.
inline Tensor as_f32(const Tensor& a) { return a.to(DType::kF32); }

// ---- broadcasting ----------------------------------------------------------

/// Broadcast result shape of a and b; throws on incompatibility.
Shape broadcast_shapes(const Shape& a, const Shape& b);

/// Elementwise binary op with broadcasting.
Tensor binary(const Tensor& a, const Tensor& b, float (*fn)(float, float));

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);
Tensor maximum(const Tensor& a, const Tensor& b);

/// Sums `grad` down to `shape` (inverse of broadcasting) — used by the
/// backward of broadcasting binary ops.
Tensor reduce_to_shape(const Tensor& grad, const Shape& shape);

// ---- scalar / unary ---------------------------------------------------------

Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);
/// Elementwise map.
Tensor unary(const Tensor& a, FunctionRef<float(float)> fn);
Tensor neg(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor tanh(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor relu(const Tensor& a);
/// gy * ((x > 0) ? 1 : 0) in one pass — the relu backward mask-and-multiply
/// without materializing the mask (bit-identical to the two-pass form).
Tensor relu_backward(const Tensor& gy, const Tensor& x);
Tensor clamp(const Tensor& a, float lo, float hi);
Tensor leaky_relu(const Tensor& a, float slope);
Tensor pow_scalar(const Tensor& a, float p);
Tensor abs(const Tensor& a);

// ---- reductions -------------------------------------------------------------

/// Sum over `dims` (each in [0, rank)); keepdim keeps size-1 dims.
Tensor sum(const Tensor& a, std::vector<int64_t> dims, bool keepdim);
/// Sum of everything -> scalar tensor (shape {}).
Tensor sum_all(const Tensor& a);
Tensor mean(const Tensor& a, std::vector<int64_t> dims, bool keepdim);
Tensor mean_all(const Tensor& a);
/// Max over one dim; returns {values, indices} (indices stored as floats).
std::pair<Tensor, Tensor> max_dim(const Tensor& a, int64_t dim, bool keepdim);
/// Argmax over one dim (indices as floats).
Tensor argmax(const Tensor& a, int64_t dim);

// ---- shape ops ---------------------------------------------------------------

/// Concatenate along `dim`; all other dims must match.
Tensor concat(const std::vector<Tensor>& ts, int64_t dim);
/// Split into pieces of the given sizes along `dim`.
std::vector<Tensor> split(const Tensor& t, const std::vector<int64_t>& sizes,
                          int64_t dim);
/// Split into `chunks` equal pieces along `dim` (must divide evenly).
std::vector<Tensor> chunk(const Tensor& t, int64_t chunks, int64_t dim);
/// Gather rows along `dim` by integer indices.
Tensor index_select(const Tensor& t, int64_t dim,
                    const std::vector<int64_t>& indices);
/// Repeats the whole tensor `reps` times along a new leading dim.
Tensor stack_repeat(const Tensor& t, int64_t reps);

// ---- softmax family -----------------------------------------------------------

Tensor softmax(const Tensor& a, int64_t dim);
Tensor log_softmax(const Tensor& a, int64_t dim);
/// Backward of log_softmax: gx = gy - softmax(x) * sum(gy, dim).
Tensor log_softmax_backward(const Tensor& gy, const Tensor& log_probs,
                            int64_t dim);
/// Backward of softmax: gx = y * (gy - sum(gy * y, dim)).
Tensor softmax_backward(const Tensor& gy, const Tensor& y, int64_t dim);

// ---- embedding -----------------------------------------------------------------

/// indices: any shape, values must be integral in [0, V); weight: [V, E].
/// Returns [*indices.shape, E].
Tensor embedding(const Tensor& indices, const Tensor& weight);
/// Scatter-add of grad_out into grad_weight [V, E].
Tensor embedding_backward(const Tensor& grad_out, const Tensor& indices,
                          int64_t vocab);

// ---- comparisons / metrics -------------------------------------------------------

/// Fraction of positions where argmax(logits, -1) equals labels.
double accuracy(const Tensor& logits, const Tensor& labels);

/// Max |a - b| over all elements (shapes must match).
float max_abs_diff(const Tensor& a, const Tensor& b);
/// True when max_abs_diff <= atol + rtol * max|b|.
bool allclose(const Tensor& a, const Tensor& b, float rtol = 1e-5f,
              float atol = 1e-6f);

}  // namespace hfta::ops
