// Dense N-d tensor with an element-type axis (f32 / f16 / bf16).
//
// Design: tensors are always contiguous row-major. Copying a Tensor is a
// shallow copy (shared storage, like torch.Tensor); clone() deep-copies.
// reshape() shares storage; transpose()/permute() materialize a contiguous
// result (simplicity over view tricks — all kernels then run on contiguous
// memory). Arithmetic runs on float32 only: f16/bf16 tensors are STORAGE
// (raw 16-bit patterns viewed byte-wise over the same pooled float buffers),
// widened to f32 at kernel entry (ops::as_f32) so every GEMM/conv
// accumulates in fp32. data()/at()/fill_()/... assert f32; half tensors
// expose data_u16() and convert via to(DType). Integer data (labels, token
// ids, pooling indices) is stored in f32 tensors holding exact small
// integers.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/check.h"
#include "core/rng.h"
#include "core/storage_pool.h"
#include "tensor/dtype.h"

namespace hfta {

using Shape = std::vector<int64_t>;

/// Returns a human-readable "[2, 3, 4]" rendering of a shape.
std::string shape_str(const Shape& s);

/// Product of all dims (1 for rank-0 / empty shape).
int64_t shape_numel(const Shape& s);

class Tensor {
 public:
  /// Undefined tensor (no storage). defined() == false.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  // -- factories ------------------------------------------------------------
  static Tensor zeros(Shape shape);
  /// UNINITIALIZED storage of the given shape: the caller must overwrite
  /// every element before reading any. This is the fast path for kernels
  /// and factories whose output is fully written (no zero-fill, and a
  /// recycled pool buffer is handed over as-is). Half-precision tensors
  /// round their byte size up to the pool's float granularity.
  static Tensor empty(Shape shape, DType dtype = DType::kF32);
  static Tensor ones(Shape shape);
  static Tensor full(Shape shape, float value);
  /// Standard-normal entries drawn from `rng`.
  static Tensor randn(Shape shape, Rng& rng);
  /// Uniform [lo, hi) entries drawn from `rng`.
  static Tensor rand(Shape shape, Rng& rng, float lo = 0.f, float hi = 1.f);
  /// 1-D tensor [0, 1, ..., n-1].
  static Tensor arange(int64_t n);
  /// Copies `values` (size must equal shape_numel(shape)).
  static Tensor from_data(Shape shape, const std::vector<float>& values);

  // -- metadata -------------------------------------------------------------
  bool defined() const { return static_cast<bool>(storage_); }
  int64_t dim() const { return static_cast<int64_t>(shape_.size()); }
  const Shape& shape() const { return shape_; }
  /// Size along dim `d`; negative d counts from the end.
  int64_t size(int64_t d) const;
  int64_t numel() const { return numel_; }
  DType dtype() const { return dtype_; }
  /// Payload size in bytes (numel * element size, before the pool's
  /// float-granularity rounding).
  int64_t byte_size() const { return numel_ * dtype_size(dtype_); }

  // -- raw access -----------------------------------------------------------
  // f32 view — the only one kernels compute through. Asserting here (rather
  // than silently reinterpreting) is what lets every pre-dtype kernel stay
  // correct unchanged: a half tensor reaching one is a loud bug, not a
  // garbage result.
  float* data() {
    HFTA_CHECK(dtype_ == DType::kF32, "data(): tensor is ",
               dtype_name(dtype_), "; widen with ops::as_f32 first");
    return storage_.data();
  }
  const float* data() const {
    HFTA_CHECK(dtype_ == DType::kF32, "data(): tensor is ",
               dtype_name(dtype_), "; widen with ops::as_f32 first");
    return storage_.data();
  }
  /// Raw 16-bit view of an f16/bf16 tensor.
  uint16_t* data_u16() {
    HFTA_CHECK(dtype_ != DType::kF32, "data_u16() on an f32 tensor");
    return reinterpret_cast<uint16_t*>(storage_.data());
  }
  const uint16_t* data_u16() const {
    HFTA_CHECK(dtype_ != DType::kF32, "data_u16() on an f32 tensor");
    return reinterpret_cast<const uint16_t*>(storage_.data());
  }
  /// Element accessor for tests / debugging (slow).
  float& at(std::initializer_list<int64_t> idx);
  float at(std::initializer_list<int64_t> idx) const;
  /// Value of a single-element tensor.
  float item() const;

  // -- shape manipulation (storage-sharing unless noted) ---------------------
  /// Same storage, new shape; one dim may be -1 (inferred).
  Tensor reshape(Shape shape) const;
  /// reshape with a leading dim inserted.
  Tensor unsqueeze(int64_t d) const;
  /// remove a size-1 dim.
  Tensor squeeze(int64_t d) const;
  /// Deep copy.
  Tensor clone() const;
  /// Materialized transpose of dims a, b.
  Tensor transpose(int64_t a, int64_t b) const;
  /// Materialized permutation; perm must be a permutation of 0..dim-1.
  Tensor permute(const std::vector<int64_t>& perm) const;
  /// Materialized copy of rows [start, end) along `d`.
  Tensor slice(int64_t d, int64_t start, int64_t end) const;
  /// Converted copy at `dtype` (round-to-nearest-even when narrowing; exact
  /// when widening). Returns *this unchanged when the dtype already matches.
  Tensor to(DType dtype) const;

  // -- in-place helpers -------------------------------------------------------
  void fill_(float v);
  void zero_() { fill_(0.f); }
  /// this += alpha * other (same shape).
  void add_(const Tensor& other, float alpha = 1.f);
  /// this *= s.
  void mul_(float s);
  /// Copies values from `other` (same numel and dtype) into this tensor's
  /// storage.
  void copy_(const Tensor& other);

  /// True when the two tensors share the same storage buffer.
  bool shares_storage_with(const Tensor& other) const {
    return storage_ == other.storage_;
  }

  /// Flattened contents as a vector (for tests).
  std::vector<float> to_vector() const;

  // Allocation instrumentation lives on StoragePool::stats() and
  // IterationScope::Stats (one snapshot struct), not on Tensor.

 private:
  StorageRef storage_;  // pool-recycled block with intrusive refcount
  Shape shape_;
  int64_t numel_ = 0;
  DType dtype_ = DType::kF32;

  int64_t flat_index(std::initializer_list<int64_t> idx) const;
};

}  // namespace hfta
