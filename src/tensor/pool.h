// Pooling kernels: MaxPool2d (with saved argmax indices for the backward)
// and AdaptiveAvgPool2d, matching PyTorch semantics.
#pragma once

#include <utility>

#include "tensor/tensor.h"

namespace hfta::ops {

struct PoolArgs {
  int64_t kernel = 2;
  int64_t stride = 2;  // 0 means "same as kernel"
  int64_t pad = 0;

  int64_t effective_stride() const { return stride == 0 ? kernel : stride; }
};

/// x: [N, C, H, W] -> {values [N,C,Ho,Wo], flat argmax indices into H*W}.
std::pair<Tensor, Tensor> max_pool2d(const Tensor& x, const PoolArgs& args);
/// Scatters gy back through the saved indices.
Tensor max_pool2d_backward(const Tensor& gy, const Tensor& indices,
                           const Shape& x_shape);

/// x: [N, C, H, W] -> [N, C, out_h, out_w]; PyTorch adaptive bin edges.
Tensor adaptive_avg_pool2d(const Tensor& x, int64_t out_h, int64_t out_w);
Tensor adaptive_avg_pool2d_backward(const Tensor& gy, const Shape& x_shape);

/// Plain average pooling.
Tensor avg_pool2d(const Tensor& x, const PoolArgs& args);
Tensor avg_pool2d_backward(const Tensor& gy, const Shape& x_shape,
                           const PoolArgs& args);

/// Max over the last dim of [N, C, L] -> {values [N,C], indices [N,C]}.
/// (PointNet's global feature max.)
std::pair<Tensor, Tensor> max_pool1d_global(const Tensor& x);
Tensor max_pool1d_global_backward(const Tensor& gy, const Tensor& indices,
                                  const Shape& x_shape);

}  // namespace hfta::ops
