#include "tensor/dtype.h"

#include "core/check.h"
#include "core/parallel.h"
#include "core/vec.h"

namespace hfta {

const char* dtype_name(DType d) {
  switch (d) {
    case DType::kF32: return "f32";
    case DType::kF16: return "f16";
    case DType::kBF16: return "bf16";
  }
  return "?";
}

float quantize_to(float f, DType dt) {
  switch (dt) {
    case DType::kF32: return f;
    case DType::kF16: return f16_bits_to_f32(f32_to_f16_bits(f));
    case DType::kBF16: return bf16_bits_to_f32(f32_to_bf16_bits(f));
  }
  return f;
}

// Each chunk converts its contiguous range through the vec cast kernels
// (F16C when active, bit-identical scalar otherwise). Conversions are pure
// per-element functions, so chunking cannot change any output bit.

void convert_f32_to_half(const float* src, uint16_t* dst, int64_t n, DType dt) {
  HFTA_CHECK(dt != DType::kF32, "convert_f32_to_half: target must be 16-bit");
  if (dt == DType::kF16) {
    parallel_for(Partition::elems(n), [&](int64_t lo, int64_t hi) {
      vec::cast_f32_to_f16(src + lo, dst + lo, hi - lo);
    });
  } else {
    parallel_for(Partition::elems(n), [&](int64_t lo, int64_t hi) {
      vec::cast_f32_to_bf16(src + lo, dst + lo, hi - lo);
    });
  }
}

void convert_half_to_f32(const uint16_t* src, float* dst, int64_t n, DType dt) {
  HFTA_CHECK(dt != DType::kF32, "convert_half_to_f32: source must be 16-bit");
  if (dt == DType::kF16) {
    parallel_for(Partition::elems(n), [&](int64_t lo, int64_t hi) {
      vec::cast_f16_to_f32(src + lo, dst + lo, hi - lo);
    });
  } else {
    parallel_for(Partition::elems(n), [&](int64_t lo, int64_t hi) {
      vec::cast_bf16_to_f32(src + lo, dst + lo, hi - lo);
    });
  }
}

}  // namespace hfta
