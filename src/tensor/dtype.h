// Element types and software conversion kernels.
//
// The repo targets CPUs without native fp16/bf16 arithmetic, so low-precision
// tensors store raw 16-bit patterns (IEEE binary16 or bfloat16) and every
// conversion is done in software with round-to-nearest-even — the same
// rounding contract hardware converters implement. Arithmetic never runs ON
// half-precision values: GEMM/conv kernels widen their inputs to fp32 at
// entry and accumulate in fp32 (see ops::as_f32), which is exactly the
// "fp32-accumulate from low-precision inputs" policy AMP hardware uses.
//
// Conversions are deterministic pure functions of the input bits, so casting
// inside a parallel_for over output elements preserves the repo's
// bit-identical-at-any-thread-count invariant.
#pragma once

#include <cstdint>

#include "core/half.h"

namespace hfta {

enum class DType : uint8_t {
  kF32 = 0,   // IEEE binary32 — the only type kernels compute on
  kF16 = 1,   // IEEE binary16: 1 sign, 5 exponent, 10 mantissa
  kBF16 = 2,  // bfloat16: 1 sign, 8 exponent, 7 mantissa (truncated f32)
};

const char* dtype_name(DType d);

/// Bytes per element.
constexpr int64_t dtype_size(DType d) { return d == DType::kF32 ? 4 : 2; }

// The scalar converters (f32_to_f16_bits etc.) live in core/half.h — they
// are the reference semantics for the vectorized cast kernels in core/vec_*
// and are re-exported here for existing callers.

/// Scalar round-trip through `dt` (f32 for kF32): the value an f32 number
/// becomes after being stored at that precision.
float quantize_to(float f, DType dt);

// -- batch converters ---------------------------------------------------------
// Parallel over output elements (independent coordinates — deterministic at
// any thread count), vectorized per chunk through core/vec. `dt` selects the
// 16-bit format and must not be kF32.

void convert_f32_to_half(const float* src, uint16_t* dst, int64_t n, DType dt);
void convert_half_to_f32(const uint16_t* src, float* dst, int64_t n, DType dt);

}  // namespace hfta
