// GEMM-family kernels: matmul, batched matmul, baddbmm (the kernel the
// paper's fused Linear lowers to), and the raw gemm used by the conv
// implementation.
#pragma once

#include "tensor/tensor.h"

namespace hfta::ops {

/// C[M,N] (+)= alpha * A[M,K] @ B[K,N]; when beta == 0 C is overwritten,
/// when beta == 1 C is accumulated into. A/B may be logically transposed
/// (absorbed by the packed-panel kernel — no materialized transposes).
///
/// `scratch` is the packing workspace: callers inside a parallel body MUST
/// pass a hoisted region of gemm_scratch_floats(m, n, k) floats (DESIGN §10);
/// a nullptr means "top-level call" and the kernel acquires pool scratch on
/// the launching thread itself.
void gemm(const float* a, const float* b, float* c, int64_t m, int64_t n,
          int64_t k, bool trans_a, bool trans_b, float alpha = 1.f,
          float beta = 0.f, float* scratch = nullptr);

/// Packing-workspace size (in floats) a gemm of this shape needs.
int64_t gemm_scratch_floats(int64_t m, int64_t n, int64_t k);

// Every variant takes per-operand quantize policies qa/qb: kF16/kBF16 asks
// the kernel to quantize that F32 operand RNE to the half format DURING
// packing and widen it back — bit-identical to casting the tensor to 16-bit
// storage first (autocast's definition) with no materialized cast tensor or
// extra memory pass. kF32 (the default) packs verbatim; operands already
// stored in a half dtype are widened as before and their policy is ignored.

/// [M,K] @ [K,N] -> [M,N].
Tensor matmul(const Tensor& a, const Tensor& b, DType qa = DType::kF32,
              DType qb = DType::kF32);
/// [M,K]^T-aware product: a [K,M] treated as transposed.
Tensor matmul_tn(const Tensor& a, const Tensor& b, DType qa = DType::kF32,
                 DType qb = DType::kF32);
/// a [M,K] @ b[N,K]^T -> [M,N].
Tensor matmul_nt(const Tensor& a, const Tensor& b, DType qa = DType::kF32,
                 DType qb = DType::kF32);

/// [B,M,K] @ [B,K,N] -> [B,M,N].
Tensor bmm(const Tensor& a, const Tensor& b, DType qa = DType::kF32,
           DType qb = DType::kF32);
/// bmm with a transposed: a [B,K,M].
Tensor bmm_tn(const Tensor& a, const Tensor& b, DType qa = DType::kF32,
              DType qb = DType::kF32);
/// bmm with b transposed: b [B,N,K].
Tensor bmm_nt(const Tensor& a, const Tensor& b, DType qa = DType::kF32,
              DType qb = DType::kF32);

/// bias [B,1,N] (or broadcastable to [B,M,N]) + [B,M,K] @ [B,K,N].
/// This is the fused-Linear kernel of the paper (Appendix B, row Linear).
/// The quantize policies apply to a/b only — the bias add stays f32.
Tensor baddbmm(const Tensor& bias, const Tensor& a, const Tensor& b,
               DType qa = DType::kF32, DType qb = DType::kF32);

/// PyTorch-convention linear: x [.., in] @ w[out, in]^T + b[out].
/// qx/qw quantize x and w; the bias add stays f32.
Tensor linear_forward(const Tensor& x, const Tensor& w, const Tensor& b,
                      DType qx = DType::kF32, DType qw = DType::kF32);

}  // namespace hfta::ops
