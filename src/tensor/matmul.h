// GEMM-family kernels: matmul, batched matmul, baddbmm (the kernel the
// paper's fused Linear lowers to), and the raw gemm used by the conv
// implementation.
#pragma once

#include "tensor/tensor.h"

namespace hfta::ops {

/// C[M,N] (+)= alpha * A[M,K] @ B[K,N]; when beta == 0 C is overwritten,
/// when beta == 1 C is accumulated into. A/B may be logically transposed.
void gemm(const float* a, const float* b, float* c, int64_t m, int64_t n,
          int64_t k, bool trans_a, bool trans_b, float alpha = 1.f,
          float beta = 0.f);

/// [M,K] @ [K,N] -> [M,N].
Tensor matmul(const Tensor& a, const Tensor& b);
/// [M,K]^T-aware product: a [K,M] treated as transposed.
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// a [M,K] @ b[N,K]^T -> [M,N].
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// [B,M,K] @ [B,K,N] -> [B,M,N].
Tensor bmm(const Tensor& a, const Tensor& b);
/// bmm with a transposed: a [B,K,M].
Tensor bmm_tn(const Tensor& a, const Tensor& b);
/// bmm with b transposed: b [B,N,K].
Tensor bmm_nt(const Tensor& a, const Tensor& b);

/// bias [B,1,N] (or broadcastable to [B,M,N]) + [B,M,K] @ [B,K,N].
/// This is the fused-Linear kernel of the paper (Appendix B, row Linear).
Tensor baddbmm(const Tensor& bias, const Tensor& a, const Tensor& b);

/// PyTorch-convention linear: x [.., in] @ w[out, in]^T + b[out].
Tensor linear_forward(const Tensor& x, const Tensor& w, const Tensor& b);

}  // namespace hfta::ops
