#include "tensor/tensor.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <sstream>

#include "core/storage_pool.h"
#include "core/vec.h"

namespace hfta {

std::string shape_str(const Shape& s) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < s.size(); ++i) {
    if (i) os << ", ";
    os << s[i];
  }
  os << "]";
  return os.str();
}

int64_t shape_numel(const Shape& s) {
  int64_t n = 1;
  for (int64_t d : s) n *= d;
  return n;
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  for (int64_t d : shape_) HFTA_CHECK(d >= 0, "negative dim in ", shape_str(shape_));
  numel_ = shape_numel(shape_);
  storage_ = StoragePool::instance().acquire(numel_, /*zeroed=*/true);
}

Tensor Tensor::empty(Shape shape, DType dtype) {
  Tensor t;
  t.shape_ = std::move(shape);
  for (int64_t d : t.shape_)
    HFTA_CHECK(d >= 0, "negative dim in ", shape_str(t.shape_));
  t.numel_ = shape_numel(t.shape_);
  t.dtype_ = dtype;
  // The pool hands out float-granular blocks; a half tensor views the same
  // block byte-wise and rounds its size up to whole floats.
  const int64_t floats = (t.numel_ * dtype_size(dtype) + 3) / 4;
  t.storage_ = StoragePool::instance().acquire(floats, /*zeroed=*/false);
  return t;
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.f); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t = empty(std::move(shape));
  t.fill_(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng) {
  Tensor t = empty(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) p[i] = static_cast<float>(rng.normal());
  return t;
}

Tensor Tensor::rand(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t = empty(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i)
    p[i] = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::arange(int64_t n) {
  Tensor t = empty({n});
  float* p = t.data();
  for (int64_t i = 0; i < n; ++i) p[i] = static_cast<float>(i);
  return t;
}

Tensor Tensor::from_data(Shape shape, const std::vector<float>& values) {
  Tensor t = empty(std::move(shape));
  HFTA_CHECK(static_cast<int64_t>(values.size()) == t.numel(),
             "from_data: ", values.size(), " values for shape ",
             shape_str(t.shape()));
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

int64_t Tensor::size(int64_t d) const {
  const int64_t nd = dim();
  if (d < 0) d += nd;
  HFTA_CHECK(d >= 0 && d < nd, "size(", d, ") on rank-", nd, " tensor");
  return shape_[static_cast<size_t>(d)];
}

int64_t Tensor::flat_index(std::initializer_list<int64_t> idx) const {
  HFTA_CHECK(static_cast<int64_t>(idx.size()) == dim(), "at(): rank mismatch");
  int64_t flat = 0;
  size_t k = 0;
  for (int64_t i : idx) {
    HFTA_CHECK(i >= 0 && i < shape_[k], "at(): index ", i, " out of bounds for dim ",
               k, " of ", shape_str(shape_));
    flat = flat * shape_[k] + i;
    ++k;
  }
  return flat;
}

float& Tensor::at(std::initializer_list<int64_t> idx) {
  return data()[flat_index(idx)];
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  return data()[flat_index(idx)];
}

float Tensor::item() const {
  HFTA_CHECK(numel_ == 1, "item() on tensor with ", numel_, " elements");
  return data()[0];
}

Tensor Tensor::reshape(Shape shape) const {
  HFTA_CHECK(defined(), "reshape of undefined tensor");
  int64_t known = 1;
  int64_t infer = -1;
  for (size_t i = 0; i < shape.size(); ++i) {
    if (shape[i] == -1) {
      HFTA_CHECK(infer == -1, "reshape: more than one -1 in ", shape_str(shape));
      infer = static_cast<int64_t>(i);
    } else {
      known *= shape[i];
    }
  }
  if (infer >= 0) {
    HFTA_CHECK(known > 0 && numel_ % known == 0, "reshape: cannot infer dim for ",
               shape_str(shape), " from numel ", numel_);
    shape[static_cast<size_t>(infer)] = numel_ / known;
  }
  HFTA_CHECK(shape_numel(shape) == numel_, "reshape ", shape_str(shape_), " -> ",
             shape_str(shape), ": numel mismatch");
  Tensor t;
  t.storage_ = storage_;
  t.shape_ = std::move(shape);
  t.numel_ = numel_;
  t.dtype_ = dtype_;
  return t;
}

Tensor Tensor::unsqueeze(int64_t d) const {
  Shape s = shape_;
  if (d < 0) d += dim() + 1;
  HFTA_CHECK(d >= 0 && d <= dim(), "unsqueeze(", d, ") on rank-", dim());
  s.insert(s.begin() + d, 1);
  return reshape(std::move(s));
}

Tensor Tensor::squeeze(int64_t d) const {
  if (d < 0) d += dim();
  HFTA_CHECK(d >= 0 && d < dim() && shape_[static_cast<size_t>(d)] == 1,
             "squeeze(", d, ") on ", shape_str(shape_));
  Shape s = shape_;
  s.erase(s.begin() + d);
  return reshape(std::move(s));
}

Tensor Tensor::clone() const {
  HFTA_CHECK(defined(), "clone of undefined tensor");
  Tensor t = empty(shape_, dtype_);
  std::memcpy(t.storage_.data(), storage_.data(),
              static_cast<size_t>(byte_size()));
  return t;
}

Tensor Tensor::permute(const std::vector<int64_t>& perm) const {
  const int64_t nd = dim();
  HFTA_CHECK(static_cast<int64_t>(perm.size()) == nd, "permute rank mismatch");
  std::vector<bool> seen(static_cast<size_t>(nd), false);
  Shape out_shape(static_cast<size_t>(nd));
  for (int64_t i = 0; i < nd; ++i) {
    const int64_t p = perm[static_cast<size_t>(i)];
    HFTA_CHECK(p >= 0 && p < nd && !seen[static_cast<size_t>(p)],
               "permute: invalid permutation");
    seen[static_cast<size_t>(p)] = true;
    out_shape[static_cast<size_t>(i)] = shape_[static_cast<size_t>(p)];
  }
  // Strides of the source in its own layout.
  std::vector<int64_t> src_strides(static_cast<size_t>(nd), 1);
  for (int64_t i = nd - 2; i >= 0; --i)
    src_strides[static_cast<size_t>(i)] =
        src_strides[static_cast<size_t>(i + 1)] * shape_[static_cast<size_t>(i + 1)];

  Tensor out = empty(out_shape);
  const float* src = data();
  float* dst = out.data();
  std::vector<int64_t> idx(static_cast<size_t>(nd), 0);
  for (int64_t flat = 0; flat < numel_; ++flat) {
    int64_t src_off = 0;
    for (int64_t i = 0; i < nd; ++i)
      src_off += idx[static_cast<size_t>(i)] *
                 src_strides[static_cast<size_t>(perm[static_cast<size_t>(i)])];
    dst[flat] = src[src_off];
    // increment mixed-radix index over out_shape
    for (int64_t i = nd - 1; i >= 0; --i) {
      if (++idx[static_cast<size_t>(i)] < out_shape[static_cast<size_t>(i)]) break;
      idx[static_cast<size_t>(i)] = 0;
    }
  }
  return out;
}

Tensor Tensor::transpose(int64_t a, int64_t b) const {
  const int64_t nd = dim();
  if (a < 0) a += nd;
  if (b < 0) b += nd;
  HFTA_CHECK(a >= 0 && a < nd && b >= 0 && b < nd, "transpose dims out of range");
  std::vector<int64_t> perm(static_cast<size_t>(nd));
  std::iota(perm.begin(), perm.end(), 0);
  std::swap(perm[static_cast<size_t>(a)], perm[static_cast<size_t>(b)]);
  return permute(perm);
}

Tensor Tensor::slice(int64_t d, int64_t start, int64_t end) const {
  const int64_t nd = dim();
  if (d < 0) d += nd;
  HFTA_CHECK(d >= 0 && d < nd, "slice dim out of range");
  const int64_t n = shape_[static_cast<size_t>(d)];
  HFTA_CHECK(0 <= start && start <= end && end <= n, "slice [", start, ", ", end,
             ") out of range for dim of size ", n);
  Shape out_shape = shape_;
  out_shape[static_cast<size_t>(d)] = end - start;
  Tensor out = empty(out_shape);
  // View the tensor as [outer, n, inner]; copy rows [start, end).
  int64_t outer = 1, inner = 1;
  for (int64_t i = 0; i < d; ++i) outer *= shape_[static_cast<size_t>(i)];
  for (int64_t i = d + 1; i < nd; ++i) inner *= shape_[static_cast<size_t>(i)];
  const float* src = data();
  float* dst = out.data();
  const int64_t len = end - start;
  for (int64_t o = 0; o < outer; ++o) {
    std::memcpy(dst + o * len * inner, src + (o * n + start) * inner,
                sizeof(float) * static_cast<size_t>(len * inner));
  }
  return out;
}

void Tensor::fill_(float v) { vec::fill(v, data(), numel_); }

void Tensor::add_(const Tensor& other, float alpha) {
  HFTA_CHECK(numel_ == other.numel_, "add_: numel mismatch ", numel_, " vs ",
             other.numel_);
  // p[i] += alpha * o[i], separate mul + add (vec::axpy's exact contract).
  vec::axpy(alpha, other.data(), data(), numel_);
}

void Tensor::mul_(float s) {
  vec::unary(vec::UnOp::kMulScalar, s, 0.f, data(), data(), numel_);
}

void Tensor::copy_(const Tensor& other) {
  HFTA_CHECK(numel_ == other.numel_, "copy_: numel mismatch");
  HFTA_CHECK(dtype_ == other.dtype_, "copy_: dtype mismatch ",
             dtype_name(dtype_), " vs ", dtype_name(other.dtype_));
  std::memcpy(storage_.data(), other.storage_.data(),
              static_cast<size_t>(byte_size()));
}

Tensor Tensor::to(DType dtype) const {
  HFTA_CHECK(defined(), "to() of undefined tensor");
  if (dtype == dtype_) return *this;
  if (dtype_ != DType::kF32 && dtype != DType::kF32) {
    // f16 <-> bf16: widen exactly, then narrow with RNE.
    return to(DType::kF32).to(dtype);
  }
  Tensor out = empty(shape_, dtype);
  if (dtype_ == DType::kF32) {
    convert_f32_to_half(storage_.data(),
                        reinterpret_cast<uint16_t*>(out.storage_.data()),
                        numel_, dtype);
  } else {
    convert_half_to_f32(reinterpret_cast<const uint16_t*>(storage_.data()),
                        out.storage_.data(), numel_, dtype_);
  }
  return out;
}

std::vector<float> Tensor::to_vector() const {
  return std::vector<float>(data(), data() + numel_);
}

}  // namespace hfta
