// Grouped (de)convolution kernels.
//
// These are the substrate for the paper's central fusion rule: B Conv2d
// operators with G groups fuse into one grouped Conv2d with B*G groups
// (Appendix B). Forward runs im2col + GEMM per (sample, group); the two
// backward kernels are the exact adjoints. ConvTranspose2d is implemented
// through the conv/conv-grad duality.
//
// Weight layouts (PyTorch convention):
//   conv2d            w: [Cout, Cin/groups, kh, kw]
//   conv_transpose2d  w: [Cin, Cout/groups, kh, kw]
#pragma once

#include "tensor/tensor.h"

namespace hfta::ops {

struct ConvArgs {
  int64_t stride_h = 1;
  int64_t stride_w = 1;
  int64_t pad_h = 0;
  int64_t pad_w = 0;
  int64_t groups = 1;

  static ConvArgs make(int64_t stride, int64_t pad, int64_t groups = 1) {
    return ConvArgs{stride, stride, pad, pad, groups};
  }
};

/// Output spatial size of a convolution.
int64_t conv_out_size(int64_t in, int64_t kernel, int64_t stride, int64_t pad);
/// Output spatial size of a transposed convolution.
int64_t conv_transpose_out_size(int64_t in, int64_t kernel, int64_t stride,
                                int64_t pad, int64_t out_pad);

/// x: [N, Cin, H, W], w: [Cout, Cin/g, kh, kw], optional b: [Cout].
Tensor conv2d(const Tensor& x, const Tensor& w, const Tensor& b,
              const ConvArgs& args);
/// Gradient w.r.t. x given gy: [N, Cout, Ho, Wo]; x_shape: [N, Cin, H, W].
Tensor conv2d_grad_input(const Tensor& gy, const Tensor& w,
                         const Shape& x_shape, const ConvArgs& args);
/// Gradient w.r.t. w; w_shape: [Cout, Cin/g, kh, kw].
Tensor conv2d_grad_weight(const Tensor& gy, const Tensor& x,
                          const Shape& w_shape, const ConvArgs& args);
/// Gradient w.r.t. bias: sum of gy over batch and spatial dims -> [Cout].
Tensor conv2d_grad_bias(const Tensor& gy);

/// x: [N, Cin, L], w: [Cout, Cin/g, k] — lowered to 2-D with H = 1.
Tensor conv1d(const Tensor& x, const Tensor& w, const Tensor& b,
              int64_t stride, int64_t pad, int64_t groups);
Tensor conv1d_grad_input(const Tensor& gy, const Tensor& w,
                         const Shape& x_shape, int64_t stride, int64_t pad,
                         int64_t groups);
Tensor conv1d_grad_weight(const Tensor& gy, const Tensor& x,
                          const Shape& w_shape, int64_t stride, int64_t pad,
                          int64_t groups);

struct ConvTransposeArgs {
  int64_t stride = 1;
  int64_t pad = 0;
  int64_t out_pad = 0;
  int64_t groups = 1;
};

/// x: [N, Cin, H, W], w: [Cin, Cout/g, kh, kw], optional b: [Cout].
Tensor conv_transpose2d(const Tensor& x, const Tensor& w, const Tensor& b,
                        const ConvTransposeArgs& args);
Tensor conv_transpose2d_grad_input(const Tensor& gy, const Tensor& w,
                                   const ConvTransposeArgs& args);
Tensor conv_transpose2d_grad_weight(const Tensor& gy, const Tensor& x,
                                    const Shape& w_shape,
                                    const ConvTransposeArgs& args);

/// x: [N, Cin, L], w: [Cin, Cout/g, k] — lowered to 2-D with H = 1 (the
/// paper's ConvTranspose1d fusion-rule example, Section 3).
Tensor conv_transpose1d(const Tensor& x, const Tensor& w, const Tensor& b,
                        const ConvTransposeArgs& args);
Tensor conv_transpose1d_grad_input(const Tensor& gy, const Tensor& w,
                                   const ConvTransposeArgs& args);
Tensor conv_transpose1d_grad_weight(const Tensor& gy, const Tensor& x,
                                    const Shape& w_shape,
                                    const ConvTransposeArgs& args);

}  // namespace hfta::ops
