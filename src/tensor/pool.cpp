#include "tensor/pool.h"

#include <algorithm>
#include <limits>

#include "core/parallel.h"

namespace hfta::ops {

std::pair<Tensor, Tensor> max_pool2d(const Tensor& x, const PoolArgs& a) {
  HFTA_CHECK(x.dim() == 4, "max_pool2d: x must be [N,C,H,W]");
  const int64_t N = x.size(0), C = x.size(1), H = x.size(2), W = x.size(3);
  const int64_t s = a.effective_stride();
  const int64_t Ho = (H + 2 * a.pad - a.kernel) / s + 1;
  const int64_t Wo = (W + 2 * a.pad - a.kernel) / s + 1;
  HFTA_CHECK(Ho > 0 && Wo > 0, "max_pool2d: empty output");
  Tensor y = Tensor::empty({N, C, Ho, Wo});
  Tensor idx = Tensor::empty({N, C, Ho, Wo});
  const float* px = x.data();
  float* py = y.data();
  float* pi = idx.data();
  parallel_for(Partition::rows(N * C), [&](int64_t lo, int64_t hi) {
    for (int64_t nc = lo; nc < hi; ++nc) {
      const float* plane = px + nc * H * W;
      float* yp = py + nc * Ho * Wo;
      float* ip = pi + nc * Ho * Wo;
      for (int64_t oh = 0; oh < Ho; ++oh) {
        for (int64_t ow = 0; ow < Wo; ++ow) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_idx = 0;
          for (int64_t i = 0; i < a.kernel; ++i) {
            const int64_t ih = oh * s - a.pad + i;
            if (ih < 0 || ih >= H) continue;
            for (int64_t j = 0; j < a.kernel; ++j) {
              const int64_t iw = ow * s - a.pad + j;
              if (iw < 0 || iw >= W) continue;
              const float v = plane[ih * W + iw];
              if (v > best) {
                best = v;
                best_idx = ih * W + iw;
              }
            }
          }
          yp[oh * Wo + ow] = best;
          ip[oh * Wo + ow] = static_cast<float>(best_idx);
        }
      }
    }
  });
  return {y, idx};
}

Tensor max_pool2d_backward(const Tensor& gy, const Tensor& indices,
                           const Shape& x_shape) {
  Tensor gx(x_shape);
  const int64_t N = x_shape[0], C = x_shape[1], H = x_shape[2], W = x_shape[3];
  const int64_t spatial_out = gy.numel() / (N * C);
  const float* pg = gy.data();
  const float* pi = indices.data();
  float* px = gx.data();
  // Plane-parallel scatter: every index points inside its own [H, W] plane,
  // so chunks never write the same element and the per-plane add order is
  // the serial one.
  parallel_for(Partition::rows(N * C), [&](int64_t lo, int64_t hi) {
    for (int64_t nc = lo; nc < hi; ++nc) {
      float* plane = px + nc * H * W;
      const float* g = pg + nc * spatial_out;
      const float* id = pi + nc * spatial_out;
      for (int64_t o = 0; o < spatial_out; ++o)
        plane[static_cast<int64_t>(id[o])] += g[o];
    }
  });
  return gx;
}

namespace {
inline int64_t ada_start(int64_t o, int64_t in, int64_t out) {
  return (o * in) / out;
}
inline int64_t ada_end(int64_t o, int64_t in, int64_t out) {
  return ((o + 1) * in + out - 1) / out;
}
}  // namespace

Tensor adaptive_avg_pool2d(const Tensor& x, int64_t out_h, int64_t out_w) {
  HFTA_CHECK(x.dim() == 4, "adaptive_avg_pool2d: x must be [N,C,H,W]");
  const int64_t N = x.size(0), C = x.size(1), H = x.size(2), W = x.size(3);
  Tensor y = Tensor::empty({N, C, out_h, out_w});
  const float* px = x.data();
  float* py = y.data();
  parallel_for(Partition::rows(N * C), [&](int64_t lo, int64_t hi) {
    for (int64_t nc = lo; nc < hi; ++nc) {
      const float* plane = px + nc * H * W;
      float* yp = py + nc * out_h * out_w;
      for (int64_t oh = 0; oh < out_h; ++oh) {
        const int64_t h0 = ada_start(oh, H, out_h), h1 = ada_end(oh, H, out_h);
        for (int64_t ow = 0; ow < out_w; ++ow) {
          const int64_t w0 = ada_start(ow, W, out_w), w1 = ada_end(ow, W, out_w);
          float acc = 0.f;
          for (int64_t ih = h0; ih < h1; ++ih)
            for (int64_t iw = w0; iw < w1; ++iw) acc += plane[ih * W + iw];
          yp[oh * out_w + ow] =
              acc / static_cast<float>((h1 - h0) * (w1 - w0));
        }
      }
    }
  });
  return y;
}

Tensor adaptive_avg_pool2d_backward(const Tensor& gy, const Shape& x_shape) {
  const int64_t N = x_shape[0], C = x_shape[1], H = x_shape[2], W = x_shape[3];
  const int64_t out_h = gy.size(2), out_w = gy.size(3);
  Tensor gx(x_shape);
  const float* pg = gy.data();
  float* px = gx.data();
  // Plane-parallel: all writes stay inside the chunk's own planes and the
  // per-plane accumulation order matches the serial loop exactly.
  parallel_for(Partition::rows(N * C), [&](int64_t lo, int64_t hi) {
    for (int64_t nc = lo; nc < hi; ++nc) {
      float* plane = px + nc * H * W;
      const float* g = pg + nc * out_h * out_w;
      for (int64_t oh = 0; oh < out_h; ++oh) {
        const int64_t h0 = ada_start(oh, H, out_h), h1 = ada_end(oh, H, out_h);
        for (int64_t ow = 0; ow < out_w; ++ow) {
          const int64_t w0 = ada_start(ow, W, out_w),
                        w1 = ada_end(ow, W, out_w);
          const float gv =
              g[oh * out_w + ow] / static_cast<float>((h1 - h0) * (w1 - w0));
          for (int64_t ih = h0; ih < h1; ++ih)
            for (int64_t iw = w0; iw < w1; ++iw) plane[ih * W + iw] += gv;
        }
      }
    }
  });
  return gx;
}

Tensor avg_pool2d(const Tensor& x, const PoolArgs& a) {
  HFTA_CHECK(x.dim() == 4, "avg_pool2d: x must be [N,C,H,W]");
  const int64_t N = x.size(0), C = x.size(1), H = x.size(2), W = x.size(3);
  const int64_t s = a.effective_stride();
  const int64_t Ho = (H + 2 * a.pad - a.kernel) / s + 1;
  const int64_t Wo = (W + 2 * a.pad - a.kernel) / s + 1;
  Tensor y = Tensor::empty({N, C, Ho, Wo});
  const float* px = x.data();
  float* py = y.data();
  const float inv = 1.f / static_cast<float>(a.kernel * a.kernel);
  parallel_for(Partition::rows(N * C), [&](int64_t lo, int64_t hi) {
    for (int64_t nc = lo; nc < hi; ++nc) {
      const float* plane = px + nc * H * W;
      float* yp = py + nc * Ho * Wo;
      for (int64_t oh = 0; oh < Ho; ++oh)
        for (int64_t ow = 0; ow < Wo; ++ow) {
          float acc = 0.f;
          for (int64_t i = 0; i < a.kernel; ++i) {
            const int64_t ih = oh * s - a.pad + i;
            if (ih < 0 || ih >= H) continue;
            for (int64_t j = 0; j < a.kernel; ++j) {
              const int64_t iw = ow * s - a.pad + j;
              if (iw >= 0 && iw < W) acc += plane[ih * W + iw];
            }
          }
          yp[oh * Wo + ow] = acc * inv;
        }
    }
  });
  return y;
}

Tensor avg_pool2d_backward(const Tensor& gy, const Shape& x_shape,
                           const PoolArgs& a) {
  const int64_t N = x_shape[0], C = x_shape[1], H = x_shape[2], W = x_shape[3];
  const int64_t Ho = gy.size(2), Wo = gy.size(3);
  const int64_t s = a.effective_stride();
  Tensor gx(x_shape);
  const float* pg = gy.data();
  float* px = gx.data();
  const float inv = 1.f / static_cast<float>(a.kernel * a.kernel);
  // Plane-parallel: overlapping windows only overlap within a plane, and
  // each plane belongs to exactly one chunk.
  parallel_for(Partition::rows(N * C), [&](int64_t lo, int64_t hi) {
    for (int64_t nc = lo; nc < hi; ++nc) {
      float* plane = px + nc * H * W;
      const float* g = pg + nc * Ho * Wo;
      for (int64_t oh = 0; oh < Ho; ++oh)
        for (int64_t ow = 0; ow < Wo; ++ow) {
          const float gv = g[oh * Wo + ow] * inv;
          for (int64_t i = 0; i < a.kernel; ++i) {
            const int64_t ih = oh * s - a.pad + i;
            if (ih < 0 || ih >= H) continue;
            for (int64_t j = 0; j < a.kernel; ++j) {
              const int64_t iw = ow * s - a.pad + j;
              if (iw >= 0 && iw < W) plane[ih * W + iw] += gv;
            }
          }
        }
    }
  });
  return gx;
}

std::pair<Tensor, Tensor> max_pool1d_global(const Tensor& x) {
  HFTA_CHECK(x.dim() == 3, "max_pool1d_global: x must be [N,C,L]");
  const int64_t N = x.size(0), C = x.size(1), L = x.size(2);
  Tensor y = Tensor::empty({N, C});
  Tensor idx = Tensor::empty({N, C});
  const float* px = x.data();
  float* py = y.data();
  float* pi = idx.data();
  parallel_for(Partition::range(0, N * C, 64), [&](int64_t lo, int64_t hi) {
    for (int64_t nc = lo; nc < hi; ++nc) {
      const float* row = px + nc * L;
      float best = row[0];
      int64_t bi = 0;
      for (int64_t l = 1; l < L; ++l)
        if (row[l] > best) {
          best = row[l];
          bi = l;
        }
      py[nc] = best;
      pi[nc] = static_cast<float>(bi);
    }
  });
  return {y, idx};
}

Tensor max_pool1d_global_backward(const Tensor& gy, const Tensor& indices,
                                  const Shape& x_shape) {
  Tensor gx(x_shape);
  const int64_t L = x_shape[2];
  const int64_t NC = x_shape[0] * x_shape[1];
  const float* pg = gy.data();
  const float* pi = indices.data();
  float* px = gx.data();
  // One scatter write per [nc] row — rows never alias across chunks.
  parallel_for(Partition::range(0, NC, 64), [&](int64_t lo, int64_t hi) {
    for (int64_t nc = lo; nc < hi; ++nc)
      px[nc * L + static_cast<int64_t>(pi[nc])] += pg[nc];
  });
  return gx;
}

}  // namespace hfta::ops
