// Fused multi-head attention and fused Transformer encoder layer, built on
// the Appendix-B fusion rules (the paper: "Building on top of these fusion
// rules, we further develop the fused multihead attention layer and the
// fused Transformer encoder layer").
//
// Layout: model-major [B, N, S, E] (N = batch, S = sequence, E = embed).
#pragma once

#include "hfta/fused_norm.h"
#include "hfta/fused_ops.h"

namespace hfta::fused {

class FusedMultiheadAttention : public FusedModule {
 public:
  FusedMultiheadAttention(int64_t B, int64_t embed_dim, int64_t num_heads,
                          Rng& rng);
  /// x: [B, N, S, E] -> [B, N, S, E]. Optional additive mask [S, S]
  /// (e.g. causal mask with -inf above the diagonal).
  ag::Variable forward(const ag::Variable& x) override;
  ag::Variable forward_masked(const ag::Variable& x, const Tensor& mask);
  std::vector<FusedParam> fused_parameters() override;

  std::shared_ptr<FusedLinear> in_proj;   // E -> 3E
  std::shared_ptr<FusedLinear> out_proj;  // E -> E
  int64_t embed_dim, num_heads, head_dim;
};

class FusedTransformerEncoderLayer : public FusedModule {
 public:
  /// activation: "relu" or "gelu" (BERT).
  FusedTransformerEncoderLayer(int64_t B, int64_t embed_dim, int64_t num_heads,
                               int64_t ff_dim, float dropout_p,
                               const std::string& activation, Rng& rng);
  /// x: [B, N, S, E]; post-norm residual structure (as nn.TransformerEncoderLayer).
  ag::Variable forward(const ag::Variable& x) override;
  ag::Variable forward_masked(const ag::Variable& x, const Tensor& mask);
  std::vector<FusedParam> fused_parameters() override;

  std::shared_ptr<FusedMultiheadAttention> self_attn;
  std::shared_ptr<FusedLinear> linear1, linear2;
  std::shared_ptr<FusedLayerNorm> norm1, norm2;
  std::shared_ptr<FusedDropout> drop;
  bool use_gelu;
};

}  // namespace hfta::fused
