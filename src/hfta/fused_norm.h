// Fused normalization layers (Appendix B rows BatchNorm1d/2d, LayerNorm).
#pragma once

#include "hfta/fused_ops.h"
#include "nn/norm.h"

namespace hfta::fused {

/// B BatchNorm2d layers fused: a single BatchNorm over B*C channels of the
/// channel-fused layout computes exactly the per-(model, channel) statistics
/// each independent BN would.
class FusedBatchNorm2d : public FusedModule {
 public:
  FusedBatchNorm2d(int64_t B, int64_t channels, float eps = 1e-5f,
                   float momentum = 0.1f);
  /// x: [N, B*C, H, W].
  ag::Variable forward(const ag::Variable& x) override;
  std::vector<FusedParam> fused_parameters() override;
  void load_model(int64_t b, const nn::BatchNorm2d& m);
  void store_model(int64_t b, nn::BatchNorm2d& m) const;
  /// The per-model state (weight/bias/running stats) lives in the nested
  /// B*C-channel impl, so the default name-mirroring derivation is wrong.
  StateMap state_map() const override;

  std::shared_ptr<nn::BatchNorm2d> impl;  // over B*C channels
  int64_t channels;                       // per model
};

/// B BatchNorm1d layers fused over [N, B*C] or [N, B*C, L].
class FusedBatchNorm1d : public FusedModule {
 public:
  FusedBatchNorm1d(int64_t B, int64_t channels, float eps = 1e-5f,
                   float momentum = 0.1f);
  ag::Variable forward(const ag::Variable& x) override;
  std::vector<FusedParam> fused_parameters() override;
  void load_model(int64_t b, const nn::BatchNorm1d& m);
  void store_model(int64_t b, nn::BatchNorm1d& m) const;
  StateMap state_map() const override;

  std::shared_ptr<nn::BatchNorm1d> impl;
  int64_t channels;
};

/// B LayerNorms fused on the model-major layout [B, N, D..., E...]:
/// normalize over the trailing E dims without affine, then apply the
/// per-model affine (w, b of shape [B, 1..., E...]) — Appendix B row
/// LayerNorm.
class FusedLayerNorm : public FusedModule {
 public:
  FusedLayerNorm(int64_t B, Shape normalized_shape, float eps, Rng& rng);
  ag::Variable forward(const ag::Variable& x) override;
  std::vector<FusedParam> fused_parameters() override;
  void load_model(int64_t b, const nn::LayerNorm& m);
  void store_model(int64_t b, nn::LayerNorm& m) const;

  ag::Variable weight;  // [B, E...] used broadcast as [B, 1..., E...]
  ag::Variable bias;
  Shape normalized_shape;
  float eps;
};

}  // namespace hfta::fused
