#include "hfta/fused_ops.h"

#include <map>

#include "autograd/step_program.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace hfta::fused {

namespace {

// Writes `src` into the b-th of B equal blocks along dim 0 of `dst`.
void copy_into_block(Tensor& dst, const Tensor& src, int64_t b, int64_t B) {
  const int64_t block = dst.numel() / B;
  HFTA_CHECK(src.numel() == block, "fused block copy: numel mismatch ",
             src.numel(), " vs ", block);
  std::copy(src.data(), src.data() + block, dst.data() + b * block);
}

void copy_from_block(const Tensor& src, Tensor& dst, int64_t b, int64_t B) {
  const int64_t block = src.numel() / B;
  HFTA_CHECK(dst.numel() == block, "fused block copy: numel mismatch");
  std::copy(src.data() + b * block, src.data() + (b + 1) * block, dst.data());
}

}  // namespace

// ---- state schema -----------------------------------------------------------

StateMap FusedModule::state_map() const {
  StateMap out;
  for (const auto& [name, var] : own_named_parameters())
    out.push_back(param_entry(name, var));
  for (const auto& [name, buf] : named_buffers())
    out.push_back(buffer_entry(name, buf));
  for (const auto& [name, child] : named_children()) {
    const auto* f = dynamic_cast<const FusedModule*>(child.get());
    if (f == nullptr) {
      // A plain (per-model style) child has no block layout to derive. It
      // is fine only when stateless (activations wrapped for convenience);
      // anything stateful needs an explicit schema.
      HFTA_CHECK(!nn::has_state(*child), "FusedModule::state_map: kind '",
                 kind_name(), "' has stateful non-fused child '", name,
                 "' — override state_map() to describe its layout");
      continue;
    }
    for (StateEntry e : f->state_map()) {
      e.path = name + "." + e.path;
      out.push_back(std::move(e));
    }
  }
  return out;
}

namespace {

/// One pass over the per-model tree: every parameter and buffer as a
/// storage-sharing handle keyed by dotted path. Built once per
/// load_state/store_state call so whole-model schemas (MobileNet, BERT:
/// 100+ entries) stay O(T), not O(T^2).
std::map<std::string, Tensor> collect_per_model_tensors(
    const nn::Module& root) {
  std::map<std::string, Tensor> out;
  for (const auto& [name, var] : root.named_parameters())
    out.emplace(name, var.value());
  for (const auto& [name, t] : nn::named_buffers_recursive(root))
    out.emplace(name, t);
  return out;
}

Tensor find_per_model_tensor(const std::map<std::string, Tensor>& tensors,
                             const std::string& path) {
  const auto it = tensors.find(path);
  HFTA_CHECK(it != tensors.end(), "state transfer: per-model tensor '", path,
             "' not found in the per-model tree");
  return it->second;
}

/// Moves model b's slice between the fused tensor and the per-model one,
/// in either direction, following the entry's slice rule.
void transfer_slice(const StateEntry& e, int64_t B, int64_t b,
                    Tensor per_model, bool to_fused) {
  // StateEntry holds handles; copying re-opens mutable access to storage.
  Tensor fused = e.is_buffer() ? e.fused_buffer
                               : ag::Variable(e.fused_param).mutable_value();
  switch (e.rule) {
    case SliceRule::kBlock:
      if (to_fused) {
        copy_into_block(fused, per_model, b, B);
      } else {
        copy_from_block(fused, per_model, b, B);
      }
      return;
    case SliceRule::kLinearWeight: {
      HFTA_CHECK(per_model.dim() == 2, "state transfer: '", e.path,
                 "' uses kLinearWeight but the per-model tensor is not 2-D");
      if (to_fused) {
        Tensor wt = per_model.transpose(0, 1);  // [out, in] -> [in, out]
        copy_into_block(fused, wt, b, B);
      } else {
        Tensor wt({per_model.size(1), per_model.size(0)});
        copy_from_block(fused, wt, b, B);
        const Tensor t = wt.transpose(0, 1);
        std::copy(t.data(), t.data() + t.numel(), per_model.data());
      }
      return;
    }
  }
  HFTA_CHECK(false, "state transfer: unknown slice rule");
}

}  // namespace

void load_state(const StateMap& map, int64_t B, int64_t b,
                const nn::Module& src) {
  if (map.empty()) return;
  const std::map<std::string, Tensor> tensors = collect_per_model_tensors(src);
  for (const StateEntry& e : map)
    transfer_slice(e, B, b, find_per_model_tensor(tensors, e.path),
                   /*to_fused=*/true);
}

void store_state(const StateMap& map, int64_t B, int64_t b, nn::Module& dst) {
  if (map.empty()) return;
  const std::map<std::string, Tensor> tensors = collect_per_model_tensors(dst);
  for (const StateEntry& e : map)
    transfer_slice(e, B, b, find_per_model_tensor(tensors, e.path),
                   /*to_fused=*/false);
}

std::vector<FusedParam> collect_fused_parameters(nn::Module& root,
                                                 int64_t array_size) {
  // All fused modules pack model blocks along dim 0, so any parameter in the
  // tree can be treated as a FusedParam of the tree's array size as long as
  // its numel divides evenly — validated here.
  std::vector<FusedParam> out;
  for (auto& [name, p] : root.named_parameters()) {
    HFTA_CHECK(p.numel() % array_size == 0, "parameter ", name, " (numel ",
               p.numel(), ") is not fused over B=", array_size);
    out.push_back(FusedParam{p, array_size});
  }
  return out;
}

// ---- layout converters ---------------------------------------------------------

ag::Variable to_model_major(const ag::Variable& x, int64_t B) {
  HFTA_CHECK(x.dim() >= 2 && x.size(1) % B == 0,
             "to_model_major: dim1 not divisible by B");
  const int64_t N = x.size(0);
  const int64_t C = x.size(1) / B;
  Shape mid = {N, B, C};
  for (int64_t i = 2; i < x.dim(); ++i) mid.push_back(x.size(i));
  ag::Variable r = ag::reshape(x, mid);
  std::vector<int64_t> perm(static_cast<size_t>(r.dim()));
  perm[0] = 1;
  perm[1] = 0;
  for (int64_t i = 2; i < r.dim(); ++i) perm[static_cast<size_t>(i)] = i;
  return ag::permute(r, perm);
}

ag::Variable to_channel_fused(const ag::Variable& x) {
  HFTA_CHECK(x.dim() >= 3, "to_channel_fused: needs [B, N, C, ...]");
  std::vector<int64_t> perm(static_cast<size_t>(x.dim()));
  perm[0] = 1;
  perm[1] = 0;
  for (int64_t i = 2; i < x.dim(); ++i) perm[static_cast<size_t>(i)] = i;
  ag::Variable p = ag::permute(x, perm);  // [N, B, C, ...]
  Shape out = {p.size(0), p.size(1) * p.size(2)};
  for (int64_t i = 3; i < p.dim(); ++i) out.push_back(p.size(i));
  return ag::reshape(p, out);
}

Tensor pack_channel_fused(const std::vector<Tensor>& xs) {
  HFTA_CHECK(!xs.empty(), "pack_channel_fused: empty");
  return ops::concat(xs, 1);
}

std::vector<Tensor> unpack_channel_fused(const Tensor& x, int64_t B) {
  HFTA_CHECK(x.size(1) % B == 0, "unpack_channel_fused: dim1 % B != 0");
  return ops::chunk(x, B, 1);
}

Tensor pack_model_major(const std::vector<Tensor>& xs) {
  HFTA_CHECK(!xs.empty(), "pack_model_major: empty");
  std::vector<Tensor> un;
  un.reserve(xs.size());
  for (const Tensor& t : xs) un.push_back(t.unsqueeze(0));
  return ops::concat(un, 0);
}

// ---- FusedConv2d ------------------------------------------------------------------

FusedConv2d::FusedConv2d(int64_t B, int64_t in, int64_t out, int64_t kernel,
                         int64_t stride, int64_t pad, int64_t groups,
                         bool has_bias, Rng& rng)
    : FusedModule(B),
      fused_args(ops::ConvArgs::make(stride, pad, B * groups)),
      out_channels(out) {
  const int64_t fan_in = (in / groups) * kernel * kernel;
  weight = register_parameter(
      "weight", nn::init::kaiming_uniform(
                    {B * out, in / groups, kernel, kernel}, fan_in, rng));
  if (has_bias)
    bias = register_parameter(
        "bias", nn::init::kaiming_uniform({B * out}, fan_in, rng));
}

ag::Variable FusedConv2d::forward(const ag::Variable& x) {
  return ag::conv2d(x, weight, bias, fused_args);
}

std::vector<FusedParam> FusedConv2d::fused_parameters() {
  std::vector<FusedParam> out = {{weight, array_size_}};
  if (bias.defined()) out.push_back({bias, array_size_});
  return out;
}

void FusedConv2d::load_model(int64_t b, const nn::Conv2d& m) {
  copy_into_block(weight.mutable_value(), m.weight.value(), b, array_size_);
  if (bias.defined())
    copy_into_block(bias.mutable_value(), m.bias.value(), b, array_size_);
}

void FusedConv2d::store_model(int64_t b, nn::Conv2d& m) const {
  copy_from_block(weight.value(), m.weight.mutable_value(), b, array_size_);
  if (bias.defined())
    copy_from_block(bias.value(), m.bias.mutable_value(), b, array_size_);
}

// ---- FusedConv1d --------------------------------------------------------------------

FusedConv1d::FusedConv1d(int64_t B, int64_t in, int64_t out, int64_t kernel,
                         int64_t stride, int64_t pad, int64_t groups,
                         bool has_bias, Rng& rng)
    : FusedModule(B),
      stride(stride),
      pad(pad),
      fused_groups(B * groups),
      out_channels(out) {
  const int64_t fan_in = (in / groups) * kernel;
  weight = register_parameter(
      "weight",
      nn::init::kaiming_uniform({B * out, in / groups, kernel}, fan_in, rng));
  if (has_bias)
    bias = register_parameter(
        "bias", nn::init::kaiming_uniform({B * out}, fan_in, rng));
}

ag::Variable FusedConv1d::forward(const ag::Variable& x) {
  return ag::conv1d(x, weight, bias, stride, pad, fused_groups);
}

std::vector<FusedParam> FusedConv1d::fused_parameters() {
  std::vector<FusedParam> out = {{weight, array_size_}};
  if (bias.defined()) out.push_back({bias, array_size_});
  return out;
}

void FusedConv1d::load_model(int64_t b, const nn::Conv1d& m) {
  copy_into_block(weight.mutable_value(), m.weight.value(), b, array_size_);
  if (bias.defined())
    copy_into_block(bias.mutable_value(), m.bias.value(), b, array_size_);
}

void FusedConv1d::store_model(int64_t b, nn::Conv1d& m) const {
  copy_from_block(weight.value(), m.weight.mutable_value(), b, array_size_);
  if (bias.defined())
    copy_from_block(bias.value(), m.bias.mutable_value(), b, array_size_);
}

// ---- FusedConvTranspose2d --------------------------------------------------------------

FusedConvTranspose2d::FusedConvTranspose2d(int64_t B, int64_t in, int64_t out,
                                           int64_t kernel, int64_t stride,
                                           int64_t pad, int64_t out_pad,
                                           int64_t groups, bool has_bias,
                                           Rng& rng)
    : FusedModule(B),
      fused_args{stride, pad, out_pad, B * groups},
      out_channels(out) {
  const int64_t fan_in = (out / groups) * kernel * kernel;
  weight = register_parameter(
      "weight", nn::init::kaiming_uniform(
                    {B * in, out / groups, kernel, kernel}, fan_in, rng));
  if (has_bias)
    bias = register_parameter(
        "bias", nn::init::kaiming_uniform({B * out}, fan_in, rng));
}

ag::Variable FusedConvTranspose2d::forward(const ag::Variable& x) {
  return ag::conv_transpose2d(x, weight, bias, fused_args);
}

std::vector<FusedParam> FusedConvTranspose2d::fused_parameters() {
  std::vector<FusedParam> out = {{weight, array_size_}};
  if (bias.defined()) out.push_back({bias, array_size_});
  return out;
}

void FusedConvTranspose2d::load_model(int64_t b, const nn::ConvTranspose2d& m) {
  copy_into_block(weight.mutable_value(), m.weight.value(), b, array_size_);
  if (bias.defined())
    copy_into_block(bias.mutable_value(), m.bias.value(), b, array_size_);
}

void FusedConvTranspose2d::store_model(int64_t b,
                                       nn::ConvTranspose2d& m) const {
  copy_from_block(weight.value(), m.weight.mutable_value(), b, array_size_);
  if (bias.defined())
    copy_from_block(bias.value(), m.bias.mutable_value(), b, array_size_);
}

// ---- FusedConvTranspose1d ------------------------------------------------------

FusedConvTranspose1d::FusedConvTranspose1d(int64_t B, int64_t in, int64_t out,
                                           int64_t kernel, int64_t stride,
                                           int64_t pad, int64_t out_pad,
                                           int64_t groups, bool has_bias,
                                           Rng& rng)
    : FusedModule(B),
      fused_args{stride, pad, out_pad, B * groups},
      out_channels(out) {
  const int64_t fan_in = (out / groups) * kernel;
  weight = register_parameter(
      "weight",
      nn::init::kaiming_uniform({B * in, out / groups, kernel}, fan_in, rng));
  if (has_bias)
    bias = register_parameter(
        "bias", nn::init::kaiming_uniform({B * out}, fan_in, rng));
}

ag::Variable FusedConvTranspose1d::forward(const ag::Variable& x) {
  return ag::conv_transpose1d(x, weight, bias, fused_args);
}

std::vector<FusedParam> FusedConvTranspose1d::fused_parameters() {
  std::vector<FusedParam> out = {{weight, array_size_}};
  if (bias.defined()) out.push_back({bias, array_size_});
  return out;
}

void FusedConvTranspose1d::load_model(int64_t b, const nn::ConvTranspose1d& m) {
  copy_into_block(weight.mutable_value(), m.weight.value(), b, array_size_);
  if (bias.defined())
    copy_into_block(bias.mutable_value(), m.bias.value(), b, array_size_);
}

void FusedConvTranspose1d::store_model(int64_t b,
                                       nn::ConvTranspose1d& m) const {
  copy_from_block(weight.value(), m.weight.mutable_value(), b, array_size_);
  if (bias.defined())
    copy_from_block(bias.value(), m.bias.mutable_value(), b, array_size_);
}

// ---- FusedLinear --------------------------------------------------------------------------

FusedLinear::FusedLinear(int64_t B, int64_t in, int64_t out, bool has_bias,
                         Rng& rng)
    : FusedModule(B), in_features(in), out_features(out) {
  weight =
      register_parameter("weight", nn::init::kaiming_uniform({B, in, out},
                                                             in, rng));
  if (has_bias)
    bias = register_parameter("bias",
                              nn::init::kaiming_uniform({B, 1, out}, in, rng));
}

ag::Variable FusedLinear::forward(const ag::Variable& x) {
  HFTA_CHECK(x.dim() == 3 && x.size(0) == array_size_ &&
                 x.size(2) == in_features,
             "FusedLinear: expected [", array_size_, ", N, ", in_features,
             "], got ", shape_str(x.shape()));
  if (bias.defined()) return ag::baddbmm(bias, x, weight);
  return ag::bmm(x, weight);
}

std::vector<FusedParam> FusedLinear::fused_parameters() {
  std::vector<FusedParam> out = {{weight, array_size_}};
  if (bias.defined()) out.push_back({bias, array_size_});
  return out;
}

void FusedLinear::load_model(int64_t b, const nn::Linear& m) {
  // nn::Linear stores [out, in]; the fused layout is [B, in, out].
  Tensor wt = m.weight.value().transpose(0, 1);  // [in, out]
  copy_into_block(weight.mutable_value(), wt, b, array_size_);
  if (bias.defined())
    copy_into_block(bias.mutable_value(), m.bias.value(), b, array_size_);
}

void FusedLinear::store_model(int64_t b, nn::Linear& m) const {
  Tensor wt({in_features, out_features});
  copy_from_block(weight.value(), wt, b, array_size_);
  m.weight.mutable_value().copy_(wt.transpose(0, 1));
  if (bias.defined())
    copy_from_block(bias.value(), m.bias.mutable_value(), b, array_size_);
}

StateMap FusedLinear::state_map() const {
  StateMap out = {param_entry("weight", weight, SliceRule::kLinearWeight)};
  if (bias.defined()) out.push_back(param_entry("bias", bias));
  return out;
}

// ---- FusedEmbedding --------------------------------------------------------------------------

FusedEmbedding::FusedEmbedding(int64_t B, int64_t vocab, int64_t dim, Rng& rng)
    : FusedModule(B), vocab(vocab), dim(dim) {
  weight = register_parameter(
      "weight", nn::init::normal({B * vocab, dim}, 0.f, 1.f, rng));
}

ag::Variable FusedEmbedding::forward(const ag::Variable&) {
  HFTA_CHECK(false, "FusedEmbedding: use lookup(indices)");
  return ag::Variable();
}

ag::Variable FusedEmbedding::lookup(const Tensor& indices) {
  // Appendix B: offset model b's ids by b*V into the stacked table.
  HFTA_CHECK(indices.size(0) == array_size_,
             "FusedEmbedding: indices must be [B, ...]");
  Tensor shifted = indices.clone();
  const int64_t per_model = indices.numel() / array_size_;
  float* p = shifted.data();
  for (int64_t b = 0; b < array_size_; ++b) {
    const float off = static_cast<float>(b * vocab);
    for (int64_t i = 0; i < per_model; ++i) p[b * per_model + i] += off;
  }
  return ag::embedding(shifted, weight);
}

std::vector<FusedParam> FusedEmbedding::fused_parameters() {
  return {{weight, array_size_}};
}

void FusedEmbedding::load_model(int64_t b, const nn::Embedding& m) {
  copy_into_block(weight.mutable_value(), m.weight.value(), b, array_size_);
}

void FusedEmbedding::store_model(int64_t b, nn::Embedding& m) const {
  copy_from_block(weight.value(), m.weight.mutable_value(), b, array_size_);
}

// ---- pooling / dropout -----------------------------------------------------------------------

FusedMaxPool2d::FusedMaxPool2d(int64_t B, int64_t kernel, int64_t stride,
                               int64_t pad)
    : FusedModule(B), args{kernel, stride, pad} {}

ag::Variable FusedMaxPool2d::forward(const ag::Variable& x) {
  return ag::max_pool2d(x, args);
}

FusedAdaptiveAvgPool2d::FusedAdaptiveAvgPool2d(int64_t B, int64_t out_h,
                                               int64_t out_w)
    : FusedModule(B), out_h(out_h), out_w(out_w) {}

ag::Variable FusedAdaptiveAvgPool2d::forward(const ag::Variable& x) {
  return ag::adaptive_avg_pool2d(x, out_h, out_w);
}

FusedDropout2d::FusedDropout2d(int64_t B, float p, uint64_t seed)
    : FusedModule(B), p(p), rng_(seed) {}

ag::Variable FusedDropout2d::forward(const ag::Variable& x) {
  if (!is_training() || p == 0.f) return x;
  HFTA_CHECK(x.dim() == 4, "FusedDropout2d expects [N, B*C, H, W]");
  const int64_t NC = x.size(0) * x.size(1);
  const int64_t spatial = x.numel() / NC;
  Tensor mask(x.shape());
  const float scale = 1.f / (1.f - p);
  // Recorded before mul_mask so replay redraws the mask (same RNG stream
  // position as eager) ahead of the product thunk — see nn::Dropout.
  auto draw = [mask, scale, NC, spatial, p = p, rng = &rng_]() mutable {
    float* m = mask.data();
    for (int64_t nc = 0; nc < NC; ++nc) {
      const float v = rng->bernoulli(p) ? 0.f : scale;
      for (int64_t s = 0; s < spatial; ++s) m[nc * spatial + s] = v;
    }
  };
  draw();
  if (ag::capturing()) ag::record_side_effect(draw);
  return ag::mul_mask(x, mask);
}

FusedDropout::FusedDropout(int64_t B, float p, uint64_t seed)
    : FusedModule(B), p(p), rng_(seed) {}

ag::Variable FusedDropout::forward(const ag::Variable& x) {
  if (!is_training() || p == 0.f) return x;
  Tensor mask(x.shape());
  const float scale = 1.f / (1.f - p);
  auto draw = [mask, scale, p = p, rng = &rng_]() mutable {
    float* m = mask.data();
    for (int64_t i = 0; i < mask.numel(); ++i)
      m[i] = rng->bernoulli(p) ? 0.f : scale;
  };
  draw();
  if (ag::capturing()) ag::record_side_effect(draw);
  return ag::mul_mask(x, mask);
}

}  // namespace hfta::fused
