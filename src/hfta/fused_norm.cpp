#include "hfta/fused_norm.h"

#include "tensor/ops.h"

namespace hfta::fused {

namespace {
void block_copy(Tensor& dst, const Tensor& src, int64_t b, int64_t B) {
  const int64_t block = dst.numel() / B;
  HFTA_CHECK(src.numel() == block, "fused norm block copy: numel mismatch");
  std::copy(src.data(), src.data() + block, dst.data() + b * block);
}
void block_extract(const Tensor& src, Tensor& dst, int64_t b, int64_t B) {
  const int64_t block = src.numel() / B;
  std::copy(src.data() + b * block, src.data() + (b + 1) * block, dst.data());
}
}  // namespace

FusedBatchNorm2d::FusedBatchNorm2d(int64_t B, int64_t channels, float eps,
                                   float momentum)
    : FusedModule(B), channels(channels) {
  impl = register_module(
      "bn", std::make_shared<nn::BatchNorm2d>(B * channels, eps, momentum));
}

ag::Variable FusedBatchNorm2d::forward(const ag::Variable& x) {
  return impl->forward(x);
}

std::vector<FusedParam> FusedBatchNorm2d::fused_parameters() {
  return {{impl->weight, array_size_}, {impl->bias, array_size_}};
}

void FusedBatchNorm2d::load_model(int64_t b, const nn::BatchNorm2d& m) {
  block_copy(impl->weight.mutable_value(), m.weight.value(), b, array_size_);
  block_copy(impl->bias.mutable_value(), m.bias.value(), b, array_size_);
  block_copy(impl->running_mean, m.running_mean, b, array_size_);
  block_copy(impl->running_var, m.running_var, b, array_size_);
}

void FusedBatchNorm2d::store_model(int64_t b, nn::BatchNorm2d& m) const {
  block_extract(impl->weight.value(), m.weight.mutable_value(), b, array_size_);
  block_extract(impl->bias.value(), m.bias.mutable_value(), b, array_size_);
  block_extract(impl->running_mean, m.running_mean, b, array_size_);
  block_extract(impl->running_var, m.running_var, b, array_size_);
}

StateMap FusedBatchNorm2d::state_map() const {
  return {param_entry("weight", impl->weight),
          param_entry("bias", impl->bias),
          buffer_entry("running_mean", impl->running_mean),
          buffer_entry("running_var", impl->running_var)};
}

FusedBatchNorm1d::FusedBatchNorm1d(int64_t B, int64_t channels, float eps,
                                   float momentum)
    : FusedModule(B), channels(channels) {
  impl = register_module(
      "bn", std::make_shared<nn::BatchNorm1d>(B * channels, eps, momentum));
}

ag::Variable FusedBatchNorm1d::forward(const ag::Variable& x) {
  return impl->forward(x);
}

std::vector<FusedParam> FusedBatchNorm1d::fused_parameters() {
  return {{impl->weight, array_size_}, {impl->bias, array_size_}};
}

void FusedBatchNorm1d::load_model(int64_t b, const nn::BatchNorm1d& m) {
  block_copy(impl->weight.mutable_value(), m.weight.value(), b, array_size_);
  block_copy(impl->bias.mutable_value(), m.bias.value(), b, array_size_);
  block_copy(impl->running_mean, m.running_mean, b, array_size_);
  block_copy(impl->running_var, m.running_var, b, array_size_);
}

void FusedBatchNorm1d::store_model(int64_t b, nn::BatchNorm1d& m) const {
  block_extract(impl->weight.value(), m.weight.mutable_value(), b, array_size_);
  block_extract(impl->bias.value(), m.bias.mutable_value(), b, array_size_);
  block_extract(impl->running_mean, m.running_mean, b, array_size_);
  block_extract(impl->running_var, m.running_var, b, array_size_);
}

StateMap FusedBatchNorm1d::state_map() const {
  return {param_entry("weight", impl->weight),
          param_entry("bias", impl->bias),
          buffer_entry("running_mean", impl->running_mean),
          buffer_entry("running_var", impl->running_var)};
}

FusedLayerNorm::FusedLayerNorm(int64_t B, Shape shape, float eps, Rng&)
    : FusedModule(B), normalized_shape(std::move(shape)), eps(eps) {
  Shape wshape = {B};
  for (int64_t d : normalized_shape) wshape.push_back(d);
  weight = register_parameter("weight", Tensor::ones(wshape));
  bias = register_parameter("bias", Tensor::zeros(wshape));
}

ag::Variable FusedLayerNorm::forward(const ag::Variable& x) {
  HFTA_CHECK(x.size(0) == array_size_, "FusedLayerNorm: expected [B, ...]");
  const int64_t n = static_cast<int64_t>(normalized_shape.size());
  std::vector<int64_t> dims;
  for (int64_t i = x.dim() - n; i < x.dim(); ++i) dims.push_back(i);
  ag::Variable mean_v = ag::mean(x, dims, /*keepdim=*/true);
  ag::Variable centered = ag::sub(x, mean_v);
  ag::Variable var_v = ag::mean(ag::mul(centered, centered), dims, true);
  ag::Variable inv_std = ag::pow_scalar(ag::add_scalar(var_v, eps), -0.5f);
  ag::Variable xhat = ag::mul(centered, inv_std);
  // Broadcast the per-model affine [B, E...] as [B, 1..., E...].
  Shape bshape(static_cast<size_t>(x.dim()), 1);
  bshape[0] = array_size_;
  for (int64_t i = 0; i < n; ++i)
    bshape[static_cast<size_t>(x.dim() - n + i)] =
        normalized_shape[static_cast<size_t>(i)];
  ag::Variable w = ag::reshape(weight, bshape);
  ag::Variable b = ag::reshape(bias, bshape);
  return ag::add(ag::mul(xhat, w), b);
}

std::vector<FusedParam> FusedLayerNorm::fused_parameters() {
  return {{weight, array_size_}, {bias, array_size_}};
}

void FusedLayerNorm::load_model(int64_t b, const nn::LayerNorm& m) {
  block_copy(weight.mutable_value(), m.weight.value(), b, array_size_);
  block_copy(bias.mutable_value(), m.bias.value(), b, array_size_);
}

void FusedLayerNorm::store_model(int64_t b, nn::LayerNorm& m) const {
  block_extract(weight.value(), m.weight.mutable_value(), b, array_size_);
  block_extract(bias.value(), m.bias.mutable_value(), b, array_size_);
}

}  // namespace hfta::fused
