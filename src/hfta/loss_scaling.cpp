#include "hfta/loss_scaling.h"

#include <atomic>
#include <cmath>

#include "core/parallel.h"
#include "tensor/ops.h"

namespace hfta::fused {

bool LossScaler::unscale_finite(Tensor& grad, double inv_scale) {
  const float inv = static_cast<float>(inv_scale);
  float* p = grad.data();
  const int64_t n = grad.numel();
  // Chunks write disjoint elements; the overflow verdict is an OR, which is
  // associative and commutative, so neither the partition nor the lane
  // schedule can change any output bit. Relaxed ordering suffices — the
  // parallel_for join publishes the flag.
  std::atomic<bool> found_inf{false};
  parallel_for(Partition::elems(n), [&](int64_t lo, int64_t hi) {
    bool local_inf = false;
    for (int64_t i = lo; i < hi; ++i) {
      const float v = p[i] * inv;
      p[i] = v;
      local_inf |= !std::isfinite(v);
    }
    if (local_inf) found_inf.store(true, std::memory_order_relaxed);
  });
  return !found_inf.load(std::memory_order_relaxed);
}

ag::Variable fused_cross_entropy(const ag::Variable& logits,
                                 const Tensor& labels,
                                 ag::Reduction reduction) {
  HFTA_CHECK(logits.dim() == 3, "fused_cross_entropy: logits must be [B,N,C]");
  const int64_t B = logits.size(0);
  const int64_t N = logits.size(1);
  const int64_t C = logits.size(2);
  ag::Variable flat = ag::reshape(logits, {B * N, C});
  ag::Variable loss =
      ag::cross_entropy(flat, labels.reshape({B * N}), reduction);
  return scale_fused_loss(loss, B, reduction);
}

ag::Variable fused_nll_loss(const ag::Variable& log_probs,
                            const Tensor& labels, ag::Reduction reduction) {
  HFTA_CHECK(log_probs.dim() == 3, "fused_nll_loss: log_probs must be [B,N,C]");
  const int64_t B = log_probs.size(0);
  const int64_t N = log_probs.size(1);
  const int64_t C = log_probs.size(2);
  ag::Variable flat = ag::reshape(log_probs, {B * N, C});
  ag::Variable loss = ag::nll_loss(flat, labels.reshape({B * N}), reduction);
  return scale_fused_loss(loss, B, reduction);
}

ag::Variable fused_bce_with_logits(const ag::Variable& logits,
                                   const Tensor& targets,
                                   ag::Reduction reduction,
                                   int64_t array_size) {
  ag::Variable loss = ag::bce_with_logits(logits, targets, reduction);
  return scale_fused_loss(loss, array_size, reduction);
}

std::vector<double> per_model_cross_entropy(const Tensor& logits,
                                            const Tensor& labels) {
  HFTA_CHECK(logits.dim() == 3, "per_model_cross_entropy: [B,N,C] expected");
  const int64_t B = logits.size(0);
  const int64_t N = logits.size(1);
  Tensor logp = ops::log_softmax(logits, 2);
  std::vector<double> out(static_cast<size_t>(B), 0.0);
  const float* pl = labels.data();
  const float* pp = logp.data();
  const int64_t C = logits.size(2);
  for (int64_t b = 0; b < B; ++b) {
    double acc = 0.0;
    for (int64_t n = 0; n < N; ++n) {
      const int64_t cls = static_cast<int64_t>(pl[b * N + n]);
      acc -= pp[(b * N + n) * C + cls];
    }
    out[static_cast<size_t>(b)] = acc / static_cast<double>(N);
  }
  return out;
}

}  // namespace hfta::fused
