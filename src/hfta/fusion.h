// The fusion planner: compiles B per-model nn::Module graphs into one
// horizontally fused array model (the paper's core transformation), plus the
// fusion bookkeeping it builds on — converting between B per-model modules
// and one fused module, and the partial-fusion adapter used by the paper's
// Appendix H.4 study.
//
// A FusionPlan mirrors MIOpen's Fusion API shape: a plan object validates
// that the B module trees are structurally congruent (same layer kinds,
// shapes and topology — per-model hyper-parameters like learning rate live
// in the fused optimizer, not the graph), reports unsupported combinations
// as structured diagnostics, and lowers each layer through a per-kind
// registry into the existing Fused* operators, inserting
// to_model_major/to_channel_fused layout conversions automatically at
// family boundaries (DESIGN.md §2). Partial fusion is a plan option
// (FusionOptions::fuse_mask) rather than bespoke per-model wiring.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <stdexcept>

#include "hfta/fused_ops.h"

namespace hfta::fused {

/// Runs B unfused replicas of a module on the channel-fused layout:
/// splits [N, B*C, ...] into per-model chunks, forwards each through its own
/// module, re-concatenates. This is what "fusion off for this block" means
/// in the partial-fusion study: the math is unchanged but the operator-level
/// fusion (and its efficiency) is gone.
///
/// The adapter OWNS its replicas: each donor passed to the constructor is
/// deep-copied via Module::clone(), so neither load_model nor training ever
/// writes through to the donor modules. Stateless kinds without clone
/// support (no parameters, no buffers) are shared as-is — there is no
/// storage to write through; a stateful kind without clone support is
/// rejected.
class UnfusedBlockAdapter : public FusedModule {
 public:
  UnfusedBlockAdapter(int64_t B, std::vector<std::shared_ptr<nn::Module>> mods);
  ag::Variable forward(const ag::Variable& x) override;

  const std::vector<std::shared_ptr<nn::Module>>& replicas() const {
    return mods_;
  }

 private:
  std::vector<std::shared_ptr<nn::Module>> mods_;
};

/// Fuses B per-model parameter tensors into the dim-0-block layout.
Tensor fuse_blocks(const std::vector<Tensor>& per_model);
/// Splits a dim-0-block fused tensor into B per-model tensors of `shape`.
std::vector<Tensor> unfuse_blocks(const Tensor& fused, int64_t B, Shape shape);

/// Copies every parameter and buffer of `src` into the structurally
/// identical module `dst` (used to (re)load unfused replicas). Alias of
/// nn::copy_state, kept under its historical fused:: name.
void copy_module_state(const nn::Module& src, nn::Module& dst);

// ---- planner ---------------------------------------------------------------

/// The two fused data layouts of DESIGN.md §2. kAny marks layout-agnostic
/// (elementwise) steps that run in whatever layout the data is in.
enum class Layout { kChannelFused, kModelMajor, kAny };
const char* layout_name(Layout l);

/// One structured planner diagnostic, in the spirit of MIOpen's
/// fusion-compile errors: which layer, which model, why.
struct FusionDiagnostic {
  std::string path;        // dotted module path; "" = the root
  int64_t model_index = -1;  // offending replica; -1 = structural/all
  std::string reason;

  std::string str() const;
};

class FusionError : public std::runtime_error {
 public:
  explicit FusionError(FusionDiagnostic d);
  FusionDiagnostic diagnostic;
};

/// Everything a lowering rule may need: the array size, the B congruent
/// per-model replicas (replicas[0] is the reference), an Rng for parameter
/// allocation, and the path for diagnostics.
struct LoweringContext {
  int64_t array_size = 1;
  std::vector<const nn::Module*> replicas;
  Rng* rng = nullptr;
  std::string path;

  const nn::Module& reference() const { return *replicas[0]; }
};

/// Result of lowering one per-model layer: the fused module and the layout
/// family it runs in. State transfer is NOT part of this contract any more:
/// the planner derives bidirectional load/store (and state-congruence
/// checking) from the module's StateMap schema (FusedModule::state_map),
/// so a registration cannot ship a loader while silently lacking store
/// support — every stateful lowering is validated against the per-model
/// reference layer at compile time.
struct Lowered {
  std::shared_ptr<nn::Module> module;
  Layout in = Layout::kAny;
  Layout out = Layout::kAny;
};

using LoweringFn = std::function<Lowered(const LoweringContext&)>;

/// Per-kind deep-copy factory: builds an independently owned, structurally
/// congruent copy of `src` (same weights/buffers). Module::clone() falls
/// back to these for composite kinds without a clone() override.
using CloneFactory =
    std::function<std::shared_ptr<nn::Module>(const nn::Module& src)>;

/// Per-layer-kind lowering rules. Built-in nn:: leaves are pre-registered;
/// composite model blocks (e.g. "models::BasicBlock") register themselves so
/// the planner can lower user-defined stacks without bespoke fused models.
/// Also hosts the per-kind clone factories that back Module::clone() for
/// registered composite kinds (the planner needs clones whenever a unit
/// runs unfused).
class LoweringRegistry {
 public:
  static LoweringRegistry& instance();

  void add(const std::string& kind_name, LoweringFn fn);
  const LoweringFn* find(const std::string& kind_name) const;
  std::vector<std::string> supported_kinds() const;

  void add_clone_factory(const std::string& kind_name, CloneFactory fn);
  const CloneFactory* find_clone_factory(const std::string& kind_name) const;

 private:
  LoweringRegistry();
  std::map<std::string, LoweringFn> rules_;
  std::map<std::string, CloneFactory> clone_factories_;
};

/// Registers `fn` (and optionally the kind's clone factory) at static-init
/// time (file-scope object in the .cpp that defines the fused counterpart).
struct LoweringRegistrar {
  LoweringRegistrar(const std::string& kind_name, LoweringFn fn) {
    LoweringRegistry::instance().add(kind_name, std::move(fn));
  }
  LoweringRegistrar(const std::string& kind_name, LoweringFn fn,
                    CloneFactory clone_fn) {
    LoweringRegistry::instance().add(kind_name, std::move(fn));
    LoweringRegistry::instance().add_clone_factory(kind_name,
                                                   std::move(clone_fn));
  }
};

struct FusionOptions {
  /// Per top-level fusion unit (the children of the root Sequential, or the
  /// single root otherwise): true = operator-fused, false = B per-model
  /// replicas behind an UnfusedBlockAdapter (Appendix H.4). Empty = all
  /// fused. Unfused units own Module::clone() copies of the donors'
  /// submodules, so the array never shares parameter/buffer storage with
  /// the donor models (stateful kinds must be clonable; see
  /// UnfusedBlockAdapter).
  std::vector<bool> fuse_mask;
  /// Layout the array's output is converted to (kAny = leave as produced).
  Layout output_layout = Layout::kAny;
  /// When true, units with no registered lowering fall back to an
  /// UnfusedBlockAdapter instead of failing the compile.
  bool allow_unfused_fallback = false;
};

/// A compiled fused array: the lowered steps of B per-model graphs, with
/// layout conversions inserted automatically between the channel-fused
/// (conv/BN/pool) and model-major (linear/LayerNorm) families. Input is
/// channel-fused [N, B*C, ...] (pack_channel_fused).
class FusedArray : public FusedModule {
 public:
  struct Step {
    std::shared_ptr<nn::Module> module;
    Layout in = Layout::kAny;
    Layout out = Layout::kAny;
    std::string path;  // dotted path into the per-model tree
    std::string kind;  // the per-model layer kind this step lowers
    /// Schema of the step's per-model state, derived once at lowering time
    /// and validated against the per-model reference layer; load_model and
    /// save_model both walk it (empty = stateless step). Unfused adapter
    /// steps transfer via nn::copy_state on their owned replicas instead.
    StateMap state;
    bool fused = true;
    int64_t unit = 0;  // top-level fusion-unit index
  };

  ag::Variable forward(const ag::Variable& x) override;

  /// Copies model b's parameters from a per-model tree congruent with the
  /// compiled one (the planner walks the same paths it lowered). Always
  /// copies INTO the array — unfused units own cloned replicas, so neither
  /// this nor training ever mutates the compile-time donors.
  void load_model(int64_t b, const nn::Module& per_model_root);

  /// The inverse of load_model: extracts model b's parameters and buffers
  /// out of the array into a congruent per-model tree, walking the same
  /// per-step paths — fused slices and unfused owned replicas alike. Store
  /// support is universal: it is derived from each step's StateMap, so
  /// every kind that loads also stores.
  /// Scope: parameters and buffers only. Private rng stream positions of
  /// stateless-random steps (FusedDropout draws ONE stream over the fused
  /// tensor, not the B per-model streams) are neither extracted nor part of
  /// the fused/serial equivalence contract to begin with; a repacked array
  /// restarts those streams.
  void save_model(int64_t b, nn::Module& per_model_root) const;

  const std::vector<Step>& steps() const { return steps_; }
  /// Number of top-level fusion units (granularity of fuse_mask).
  int64_t num_units() const { return num_units_; }
  /// Whether top-level unit u is operator-fused.
  bool unit_fused(int64_t u) const;
  Layout output_layout() const;
  /// Human-readable plan: one line per step with layouts and fusion state.
  std::string describe() const;

 private:
  friend class FusionPlan;
  FusedArray(int64_t B, FusionOptions opts);

  std::vector<Step> steps_;
  FusionOptions opts_;
  int64_t num_units_ = 0;
};

/// The compiler from B per-model module graphs to a FusedArray.
class FusionPlan {
 public:
  explicit FusionPlan(int64_t array_size, FusionOptions opts = {});

  /// Structural congruence check only — returns every diagnostic (empty =
  /// the models are fusible as far as topology and configs go).
  std::vector<FusionDiagnostic> analyze(
      const std::vector<const nn::Module*>& models) const;

  /// Verifies congruence, lowers every layer through the registry, loads
  /// all B models' weights, and returns the fused array. Every unit —
  /// fused, masked-off, or fallback — gets its own copy of the weights;
  /// the donor modules are never aliased or mutated. Throws FusionError
  /// (with a structured diagnostic) on the first unsupported combination.
  std::shared_ptr<FusedArray> compile(
      const std::vector<std::shared_ptr<nn::Module>>& models, Rng& rng) const;

  /// Structure-only compile: lowers ONE per-model graph as the structural
  /// template of all B replicas and skips weight loading entirely — fused
  /// units keep the lowering's own (rng) initialization, unfused units get
  /// B clones of the template. Use when the caller loads real weights via
  /// load_model afterwards anyway (as the Fused* model wrappers do): it
  /// avoids constructing B donor models just to immediately overwrite the
  /// array with their weights, roughly halving construction cost at paper
  /// scale (B=30).
  std::shared_ptr<FusedArray> compile_structure_only(
      const std::shared_ptr<nn::Module>& template_model, Rng& rng) const;

  /// Repacks survivors drawn from SEVERAL live arrays into one fresh array
  /// of this plan's size: model j of the result is model picks[j].model of
  /// sources[picks[j].source], extracted via save_model into clones of
  /// `template_model` and recompiled. Weights and buffers (BN running stats
  /// included) carry over exactly, so the survivors continue training
  /// bit-exactly as if they had always shared one array (optimizer state
  /// gathers separately via FusedOptimizer::repack_state_from with the same
  /// picks). This is Hyperband's successive-halving step when a rung was
  /// larger than the device cap and had to be chunked across arrays (paper
  /// Appendix E at bracket scale).
  std::shared_ptr<FusedArray> repack_multi(
      const std::vector<const FusedArray*>& sources,
      const std::vector<RepackPick>& picks, const nn::Module& template_model,
      Rng& rng) const;

  /// Single-source convenience: model j of the result is model keep[j] of
  /// `src`. Thin delegate to repack_multi — one code path for both.
  std::shared_ptr<FusedArray> repack(const FusedArray& src,
                                     const std::vector<int64_t>& keep,
                                     const nn::Module& template_model,
                                     Rng& rng) const;

  int64_t array_size() const { return array_size_; }
  const FusionOptions& options() const { return opts_; }

 private:
  std::shared_ptr<FusedArray> compile_impl(
      const std::vector<std::shared_ptr<nn::Module>>& models, Rng& rng,
      bool load_weights) const;

  int64_t array_size_;
  FusionOptions opts_;
};

// ---- planner-support fused modules ----------------------------------------

/// Fused Flatten: [B, N, d1, ...] -> [B, N, d1*...] on the model-major
/// layout (the per-model op is [N, d...] -> [N, prod]).
class FusedFlatten : public FusedModule {
 public:
  explicit FusedFlatten(int64_t B) : FusedModule(B) {}
  ag::Variable forward(const ag::Variable& x) override;
};

}  // namespace hfta::fused
