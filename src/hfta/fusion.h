// Fusion bookkeeping: converting between B per-model modules and one fused
// module, and the partial-fusion adapter used by the paper's Appendix H.4
// study (a block whose fusion is "turned off" runs its B per-model copies
// in a loop on the fused data layout).
#pragma once

#include <functional>
#include <memory>

#include "hfta/fused_ops.h"

namespace hfta::fused {

/// Runs B unfused replicas of a module on the channel-fused layout:
/// splits [N, B*C, ...] into per-model chunks, forwards each through its own
/// module, re-concatenates. This is what "fusion off for this block" means
/// in the partial-fusion study: the math is unchanged but the operator-level
/// fusion (and its efficiency) is gone.
class UnfusedBlockAdapter : public FusedModule {
 public:
  UnfusedBlockAdapter(int64_t B, std::vector<std::shared_ptr<nn::Module>> mods);
  ag::Variable forward(const ag::Variable& x) override;

  const std::vector<std::shared_ptr<nn::Module>>& replicas() const {
    return mods_;
  }

 private:
  std::vector<std::shared_ptr<nn::Module>> mods_;
};

/// Fuses B per-model parameter tensors into the dim-0-block layout.
Tensor fuse_blocks(const std::vector<Tensor>& per_model);
/// Splits a dim-0-block fused tensor into B per-model tensors of `shape`.
std::vector<Tensor> unfuse_blocks(const Tensor& fused, int64_t B, Shape shape);

}  // namespace hfta::fused
