// Fused learning-rate schedulers: each of the B models follows its own
// schedule; step() recomputes the whole lr vector and hands it to the fused
// optimizer (scalar-vector -> vector-vector, paper §3).
#pragma once

#include "hfta/fused_optim.h"

namespace hfta::fused {

class FusedLRScheduler {
 public:
  explicit FusedLRScheduler(FusedOptimizer& opt)
      : opt_(opt), base_lr_(opt.lr()) {}
  virtual ~FusedLRScheduler() = default;

  void step() {
    ++epoch_;
    opt_.set_lr(lr_at(epoch_));
  }
  int64_t epoch() const { return epoch_; }

  /// Per-model lr vector at the given epoch.
  virtual HyperVec lr_at(int64_t epoch) const = 0;

 protected:
  FusedOptimizer& opt_;
  HyperVec base_lr_;
  int64_t epoch_ = 0;
};

/// Per-model StepLR: lr_b = base_b * gamma_b^(floor(epoch / step_size_b)).
class FusedStepLR : public FusedLRScheduler {
 public:
  FusedStepLR(FusedOptimizer& opt, std::vector<int64_t> step_size,
              HyperVec gamma);
  HyperVec lr_at(int64_t epoch) const override;

 private:
  std::vector<int64_t> step_size_;
  HyperVec gamma_;
};

/// Per-model ExponentialLR: lr_b = base_b * gamma_b^epoch.
class FusedExponentialLR : public FusedLRScheduler {
 public:
  FusedExponentialLR(FusedOptimizer& opt, HyperVec gamma);
  HyperVec lr_at(int64_t epoch) const override;

 private:
  HyperVec gamma_;
};

/// Per-model cosine annealing: lr_b follows base_b's cosine to eta_min_b.
class FusedCosineAnnealingLR : public FusedLRScheduler {
 public:
  FusedCosineAnnealingLR(FusedOptimizer& opt, std::vector<int64_t> t_max,
                         HyperVec eta_min);
  HyperVec lr_at(int64_t epoch) const override;

 private:
  std::vector<int64_t> t_max_;
  HyperVec eta_min_;
};

}  // namespace hfta::fused
