// Horizontally fused operators — the paper's primary contribution
// (Appendix B, Table 6). Each Fused* module is the mathematically
// equivalent fusion of B instances of the corresponding nn:: layer:
//
//   FusedConv2d   B convs with G groups  -> one grouped conv, G' = B*G
//   FusedConv1d   likewise (1-D)
//   FusedConvTranspose2d likewise (deconvolution)
//   FusedLinear   B linears -> one baddbmm(b [B,1,Fy], x [B,N,Fx], w [B,Fx,Fy])
//   FusedBatchNorm1d/2d  per-(model,channel) statistics over B*C channels
//   FusedLayerNorm  normalize trailing dims, then per-model affine
//   FusedEmbedding  index offsets b*V into a [B*V, E] table
//   FusedMaxPool2d / FusedAdaptiveAvgPool2d / FusedDropout2d  unchanged math
//                   on the channel-fused layout
//
// Layout conventions (see DESIGN.md §2):
//   channel-fused  [N, B*C, H, W] / [N, B*C, L]  (conv/BN/pool family)
//   model-major    [B, N, F] / [B, N, ...]       (linear/LayerNorm/attention)
// to_model_major / to_channel_fused convert between them.
#pragma once

#include "nn/layers.h"
#include "nn/module.h"

namespace hfta::fused {

/// A fused parameter: the tensor packs B per-model blocks contiguously
/// along dim 0 (numel = B * per-model numel). Fused optimizers use this to
/// apply per-model hyper-parameters as broadcasted vector ops.
struct FusedParam {
  ag::Variable var;
  int64_t array_size = 1;  // B

  int64_t per_model_numel() const { return var.numel() / array_size; }
};

/// Base for all fused modules: tracks B and collects FusedParams.
class FusedModule : public nn::Module {
 public:
  explicit FusedModule(int64_t array_size) : array_size_(array_size) {
    HFTA_CHECK(array_size >= 1, "FusedModule: array size must be >= 1");
  }
  int64_t array_size() const { return array_size_; }

  /// This module's own fused parameters (not recursive).
  virtual std::vector<FusedParam> fused_parameters() { return {}; }

 protected:
  int64_t array_size_;
};

/// Collects FusedParams of every fused module in a module tree given the
/// tree's (uniform) array size; non-fused parameters are rejected.
std::vector<FusedParam> collect_fused_parameters(nn::Module& root,
                                                 int64_t array_size);

// ---- layout converters -------------------------------------------------------

/// [N, B*C, ...] -> [B, N, C, ...].
ag::Variable to_model_major(const ag::Variable& x, int64_t B);
/// [B, N, C, ...] -> [N, B*C, ...].
ag::Variable to_channel_fused(const ag::Variable& x);
/// Stacks B per-model tensors [N, C, ...] into channel-fused [N, B*C, ...].
Tensor pack_channel_fused(const std::vector<Tensor>& xs);
/// Splits channel-fused [N, B*C, ...] back into B tensors [N, C, ...].
std::vector<Tensor> unpack_channel_fused(const Tensor& x, int64_t B);
/// Stacks B per-model tensors [N, ...] into model-major [B, N, ...].
Tensor pack_model_major(const std::vector<Tensor>& xs);

// ---- fused layers --------------------------------------------------------------

class FusedConv2d : public FusedModule {
 public:
  FusedConv2d(int64_t B, int64_t in, int64_t out, int64_t kernel,
              int64_t stride, int64_t pad, int64_t groups, bool bias,
              Rng& rng);
  /// x: [N, B*in, H, W] -> [N, B*out, Ho, Wo].
  ag::Variable forward(const ag::Variable& x) override;
  std::vector<FusedParam> fused_parameters() override;

  /// Copies model b's weights from / to an unfused layer.
  void load_model(int64_t b, const nn::Conv2d& m);
  void store_model(int64_t b, nn::Conv2d& m) const;

  ag::Variable weight;  // [B*out, in/g, k, k]
  ag::Variable bias;    // [B*out]
  ops::ConvArgs fused_args;  // groups = B*g
  int64_t out_channels;      // per model
};

class FusedConv1d : public FusedModule {
 public:
  FusedConv1d(int64_t B, int64_t in, int64_t out, int64_t kernel,
              int64_t stride, int64_t pad, int64_t groups, bool bias,
              Rng& rng);
  /// x: [N, B*in, L] -> [N, B*out, Lo].
  ag::Variable forward(const ag::Variable& x) override;
  std::vector<FusedParam> fused_parameters() override;

  void load_model(int64_t b, const nn::Conv1d& m);
  void store_model(int64_t b, nn::Conv1d& m) const;

  ag::Variable weight;  // [B*out, in/g, k]
  ag::Variable bias;    // [B*out]
  int64_t stride, pad, fused_groups;
  int64_t out_channels;
};

class FusedConvTranspose2d : public FusedModule {
 public:
  FusedConvTranspose2d(int64_t B, int64_t in, int64_t out, int64_t kernel,
                       int64_t stride, int64_t pad, int64_t out_pad,
                       int64_t groups, bool bias, Rng& rng);
  /// x: [N, B*in, H, W] -> [N, B*out, Ho, Wo].
  ag::Variable forward(const ag::Variable& x) override;
  std::vector<FusedParam> fused_parameters() override;

  void load_model(int64_t b, const nn::ConvTranspose2d& m);
  void store_model(int64_t b, nn::ConvTranspose2d& m) const;

  ag::Variable weight;  // [B*in, out/g, k, k]
  ag::Variable bias;    // [B*out]
  ops::ConvTransposeArgs fused_args;  // groups = B*g
  int64_t out_channels;
};

class FusedConvTranspose1d : public FusedModule {
 public:
  FusedConvTranspose1d(int64_t B, int64_t in, int64_t out, int64_t kernel,
                       int64_t stride, int64_t pad, int64_t out_pad,
                       int64_t groups, bool bias, Rng& rng);
  /// x: [N, B*in, L] -> [N, B*out, Lo].
  ag::Variable forward(const ag::Variable& x) override;
  std::vector<FusedParam> fused_parameters() override;

  void load_model(int64_t b, const nn::ConvTranspose1d& m);
  void store_model(int64_t b, nn::ConvTranspose1d& m) const;

  ag::Variable weight;  // [B*in, out/g, k]
  ag::Variable bias;    // [B*out]
  ops::ConvTransposeArgs fused_args;  // groups = B*g
  int64_t out_channels;
};

class FusedLinear : public FusedModule {
 public:
  FusedLinear(int64_t B, int64_t in, int64_t out, bool bias, Rng& rng);
  /// x: [B, N, in] -> [B, N, out] via baddbmm.
  ag::Variable forward(const ag::Variable& x) override;
  std::vector<FusedParam> fused_parameters() override;

  void load_model(int64_t b, const nn::Linear& m);
  void store_model(int64_t b, nn::Linear& m) const;

  ag::Variable weight;  // [B, in, out]
  ag::Variable bias;    // [B, 1, out]
  int64_t in_features, out_features;
};

class FusedEmbedding : public FusedModule {
 public:
  FusedEmbedding(int64_t B, int64_t vocab, int64_t dim, Rng& rng);
  ag::Variable forward(const ag::Variable&) override;
  /// indices: [B, ...] per-model integer ids -> [B, ..., E].
  ag::Variable lookup(const Tensor& indices);
  std::vector<FusedParam> fused_parameters() override;

  void load_model(int64_t b, const nn::Embedding& m);
  void store_model(int64_t b, nn::Embedding& m) const;

  ag::Variable weight;  // [B*V, E]
  int64_t vocab, dim;
};

class FusedMaxPool2d : public FusedModule {
 public:
  FusedMaxPool2d(int64_t B, int64_t kernel, int64_t stride, int64_t pad = 0);
  ag::Variable forward(const ag::Variable& x) override;
  ops::PoolArgs args;
};

class FusedAdaptiveAvgPool2d : public FusedModule {
 public:
  FusedAdaptiveAvgPool2d(int64_t B, int64_t out_h, int64_t out_w);
  ag::Variable forward(const ag::Variable& x) override;
  int64_t out_h, out_w;
};

/// Dropout2d on the channel-fused layout: drops per-(model, channel),
/// exactly what B independent Dropout2d ops would do.
class FusedDropout2d : public FusedModule {
 public:
  FusedDropout2d(int64_t B, float p, uint64_t seed = 0xd20);
  ag::Variable forward(const ag::Variable& x) override;
  float p;

 private:
  Rng rng_;
};

/// Elementwise dropout (layout-agnostic).
class FusedDropout : public FusedModule {
 public:
  FusedDropout(int64_t B, float p, uint64_t seed = 0xd0);
  ag::Variable forward(const ag::Variable& x) override;
  float p;

 private:
  Rng rng_;
};

}  // namespace hfta::fused
