// Horizontally fused operators — the paper's primary contribution
// (Appendix B, Table 6). Each Fused* module is the mathematically
// equivalent fusion of B instances of the corresponding nn:: layer:
//
//   FusedConv2d   B convs with G groups  -> one grouped conv, G' = B*G
//   FusedConv1d   likewise (1-D)
//   FusedConvTranspose2d likewise (deconvolution)
//   FusedLinear   B linears -> one baddbmm(b [B,1,Fy], x [B,N,Fx], w [B,Fx,Fy])
//   FusedBatchNorm1d/2d  per-(model,channel) statistics over B*C channels
//   FusedLayerNorm  normalize trailing dims, then per-model affine
//   FusedEmbedding  index offsets b*V into a [B*V, E] table
//   FusedMaxPool2d / FusedAdaptiveAvgPool2d / FusedDropout2d  unchanged math
//                   on the channel-fused layout
//
// Layout conventions (see DESIGN.md §2):
//   channel-fused  [N, B*C, H, W] / [N, B*C, L]  (conv/BN/pool family)
//   model-major    [B, N, F] / [B, N, ...]       (linear/LayerNorm/attention)
// to_model_major / to_channel_fused convert between them.
#pragma once

#include "nn/layers.h"
#include "nn/module.h"

namespace hfta::fused {

/// A fused parameter: the tensor packs B per-model blocks contiguously
/// along dim 0 (numel = B * per-model numel). Fused optimizers use this to
/// apply per-model hyper-parameters as broadcasted vector ops.
struct FusedParam {
  ag::Variable var;
  int64_t array_size = 1;  // B

  int64_t per_model_numel() const { return var.numel() / array_size; }
};

// ---- state schema -----------------------------------------------------------

/// How model b's per-model tensor is laid out inside its fused counterpart.
enum class SliceRule {
  /// The fused tensor packs B per-model blocks contiguously along dim 0
  /// (fused numel = B * per-model numel); model b's block starts at
  /// b * per-model numel. Every fused tensor in this codebase uses this
  /// layout except FusedLinear's weight.
  kBlock,
  /// nn::Linear's weight: the per-model [out, in] tensor maps to the
  /// transposed [in, out] block b of the fused [B, in, out] baddbmm weight.
  kLinearWeight,
};

/// One entry of a fused module's state schema: which per-model tensor
/// (dotted path relative to the per-model layer) lives where inside the
/// fused module, and how model b's slice is laid out. Exactly one of
/// fused_param / fused_buffer is defined. The planner derives load_model,
/// save_model, and state-congruence checking from these entries instead of
/// per-kind hand-written transfer lambdas (DESIGN.md §7).
struct StateEntry {
  std::string path;          // per-model tensor path, e.g. "weight"
  ag::Variable fused_param;  // trainable state lives in a parameter...
  Tensor fused_buffer;       // ...non-trainable state (running stats) here
  SliceRule rule = SliceRule::kBlock;

  bool is_buffer() const { return fused_buffer.defined(); }
};

/// Ordered per-kind state schema (order follows registration order, which
/// matches the per-model module's own parameter/buffer order).
using StateMap = std::vector<StateEntry>;

inline StateEntry param_entry(std::string path, const ag::Variable& v,
                              SliceRule rule = SliceRule::kBlock) {
  StateEntry e;
  e.path = std::move(path);
  e.fused_param = v;
  e.rule = rule;
  return e;
}
inline StateEntry buffer_entry(std::string path, const Tensor& t) {
  StateEntry e;
  e.path = std::move(path);
  e.fused_buffer = t;
  return e;
}

/// One survivor of a multi-source repack: model `model` of the `source`-th
/// donor. FusionPlan::repack_multi (arrays) and
/// FusedOptimizer::repack_state_from (optimizer state) share this pick type
/// so weights and optimizer slices always gather from the same slots.
struct RepackPick {
  size_t source = 0;
  int64_t model = 0;
};

/// Base for all fused modules: tracks B and collects FusedParams.
class FusedModule : public nn::Module {
 public:
  explicit FusedModule(int64_t array_size) : array_size_(array_size) {
    HFTA_CHECK(array_size >= 1, "FusedModule: array size must be >= 1");
  }
  int64_t array_size() const { return array_size_; }

  /// This module's own fused parameters (not recursive).
  virtual std::vector<FusedParam> fused_parameters() { return {}; }

  /// This module's per-model state schema. The default derivation covers
  /// every composite fused module whose registered child names mirror the
  /// per-model module's: own registered parameters and buffers map by name
  /// as dim-0 blocks, and child FusedModules compose recursively under
  /// their registered names. Leaves with a different internal layout
  /// (FusedLinear's transposed weight, FusedBatchNorm's nested plain impl)
  /// override. A stateful non-fused child without an override is a schema
  /// derivation error and fails loudly.
  virtual StateMap state_map() const;

 protected:
  int64_t array_size_;
};

/// Copies model b's state from the congruent per-model module `src` into
/// the fused tensors of `map` — the schema-driven generalization of the
/// per-kind hand-written load_model methods. `B` is the fused array size.
void load_state(const StateMap& map, int64_t B, int64_t b,
                const nn::Module& src);
/// The inverse: extracts model b's slices out of the fused tensors into
/// the per-model module `dst`.
void store_state(const StateMap& map, int64_t B, int64_t b, nn::Module& dst);

/// Collects FusedParams of every fused module in a module tree given the
/// tree's (uniform) array size; non-fused parameters are rejected.
std::vector<FusedParam> collect_fused_parameters(nn::Module& root,
                                                 int64_t array_size);

// ---- layout converters -------------------------------------------------------

/// [N, B*C, ...] -> [B, N, C, ...].
ag::Variable to_model_major(const ag::Variable& x, int64_t B);
/// [B, N, C, ...] -> [N, B*C, ...].
ag::Variable to_channel_fused(const ag::Variable& x);
/// Stacks B per-model tensors [N, C, ...] into channel-fused [N, B*C, ...].
Tensor pack_channel_fused(const std::vector<Tensor>& xs);
/// Splits channel-fused [N, B*C, ...] back into B tensors [N, C, ...].
std::vector<Tensor> unpack_channel_fused(const Tensor& x, int64_t B);
/// Stacks B per-model tensors [N, ...] into model-major [B, N, ...].
Tensor pack_model_major(const std::vector<Tensor>& xs);

// ---- fused layers --------------------------------------------------------------

class FusedConv2d : public FusedModule {
 public:
  FusedConv2d(int64_t B, int64_t in, int64_t out, int64_t kernel,
              int64_t stride, int64_t pad, int64_t groups, bool bias,
              Rng& rng);
  /// x: [N, B*in, H, W] -> [N, B*out, Ho, Wo].
  ag::Variable forward(const ag::Variable& x) override;
  std::vector<FusedParam> fused_parameters() override;

  /// Copies model b's weights from / to an unfused layer.
  void load_model(int64_t b, const nn::Conv2d& m);
  void store_model(int64_t b, nn::Conv2d& m) const;

  ag::Variable weight;  // [B*out, in/g, k, k]
  ag::Variable bias;    // [B*out]
  ops::ConvArgs fused_args;  // groups = B*g
  int64_t out_channels;      // per model
};

class FusedConv1d : public FusedModule {
 public:
  FusedConv1d(int64_t B, int64_t in, int64_t out, int64_t kernel,
              int64_t stride, int64_t pad, int64_t groups, bool bias,
              Rng& rng);
  /// x: [N, B*in, L] -> [N, B*out, Lo].
  ag::Variable forward(const ag::Variable& x) override;
  std::vector<FusedParam> fused_parameters() override;

  void load_model(int64_t b, const nn::Conv1d& m);
  void store_model(int64_t b, nn::Conv1d& m) const;

  ag::Variable weight;  // [B*out, in/g, k]
  ag::Variable bias;    // [B*out]
  int64_t stride, pad, fused_groups;
  int64_t out_channels;
};

class FusedConvTranspose2d : public FusedModule {
 public:
  FusedConvTranspose2d(int64_t B, int64_t in, int64_t out, int64_t kernel,
                       int64_t stride, int64_t pad, int64_t out_pad,
                       int64_t groups, bool bias, Rng& rng);
  /// x: [N, B*in, H, W] -> [N, B*out, Ho, Wo].
  ag::Variable forward(const ag::Variable& x) override;
  std::vector<FusedParam> fused_parameters() override;

  void load_model(int64_t b, const nn::ConvTranspose2d& m);
  void store_model(int64_t b, nn::ConvTranspose2d& m) const;

  ag::Variable weight;  // [B*in, out/g, k, k]
  ag::Variable bias;    // [B*out]
  ops::ConvTransposeArgs fused_args;  // groups = B*g
  int64_t out_channels;
};

class FusedConvTranspose1d : public FusedModule {
 public:
  FusedConvTranspose1d(int64_t B, int64_t in, int64_t out, int64_t kernel,
                       int64_t stride, int64_t pad, int64_t out_pad,
                       int64_t groups, bool bias, Rng& rng);
  /// x: [N, B*in, L] -> [N, B*out, Lo].
  ag::Variable forward(const ag::Variable& x) override;
  std::vector<FusedParam> fused_parameters() override;

  void load_model(int64_t b, const nn::ConvTranspose1d& m);
  void store_model(int64_t b, nn::ConvTranspose1d& m) const;

  ag::Variable weight;  // [B*in, out/g, k]
  ag::Variable bias;    // [B*out]
  ops::ConvTransposeArgs fused_args;  // groups = B*g
  int64_t out_channels;
};

class FusedLinear : public FusedModule {
 public:
  FusedLinear(int64_t B, int64_t in, int64_t out, bool bias, Rng& rng);
  /// x: [B, N, in] -> [B, N, out] via baddbmm.
  ag::Variable forward(const ag::Variable& x) override;
  std::vector<FusedParam> fused_parameters() override;

  void load_model(int64_t b, const nn::Linear& m);
  void store_model(int64_t b, nn::Linear& m) const;
  /// weight uses kLinearWeight (the per-model [out, in] is transposed).
  StateMap state_map() const override;

  ag::Variable weight;  // [B, in, out]
  ag::Variable bias;    // [B, 1, out]
  int64_t in_features, out_features;
};

class FusedEmbedding : public FusedModule {
 public:
  FusedEmbedding(int64_t B, int64_t vocab, int64_t dim, Rng& rng);
  ag::Variable forward(const ag::Variable&) override;
  /// indices: [B, ...] per-model integer ids -> [B, ..., E].
  ag::Variable lookup(const Tensor& indices);
  std::vector<FusedParam> fused_parameters() override;

  void load_model(int64_t b, const nn::Embedding& m);
  void store_model(int64_t b, nn::Embedding& m) const;

  ag::Variable weight;  // [B*V, E]
  int64_t vocab, dim;
};

class FusedMaxPool2d : public FusedModule {
 public:
  FusedMaxPool2d(int64_t B, int64_t kernel, int64_t stride, int64_t pad = 0);
  ag::Variable forward(const ag::Variable& x) override;
  ops::PoolArgs args;
};

class FusedAdaptiveAvgPool2d : public FusedModule {
 public:
  FusedAdaptiveAvgPool2d(int64_t B, int64_t out_h, int64_t out_w);
  ag::Variable forward(const ag::Variable& x) override;
  int64_t out_h, out_w;
};

/// Dropout2d on the channel-fused layout: drops per-(model, channel),
/// exactly what B independent Dropout2d ops would do.
class FusedDropout2d : public FusedModule {
 public:
  FusedDropout2d(int64_t B, float p, uint64_t seed = 0xd20);
  ag::Variable forward(const ag::Variable& x) override;
  float p;

 private:
  Rng rng_;
};

/// Elementwise dropout (layout-agnostic).
class FusedDropout : public FusedModule {
 public:
  FusedDropout(int64_t B, float p, uint64_t seed = 0xd0);
  ag::Variable forward(const ag::Variable& x) override;
  float p;

 private:
  Rng rng_;
};

}  // namespace hfta::fused
