#include "hfta/fused_sched.h"

#include <cmath>

namespace hfta::fused {

FusedStepLR::FusedStepLR(FusedOptimizer& opt, std::vector<int64_t> step_size,
                         HyperVec gamma)
    : FusedLRScheduler(opt),
      step_size_(std::move(step_size)),
      gamma_(std::move(gamma)) {
  const size_t B = static_cast<size_t>(opt.array_size());
  if (step_size_.size() == 1) step_size_.assign(B, step_size_[0]);
  if (gamma_.size() == 1) gamma_.assign(B, gamma_[0]);
  HFTA_CHECK(step_size_.size() == B && gamma_.size() == B,
             "FusedStepLR: per-model vectors must have size 1 or B");
}

HyperVec FusedStepLR::lr_at(int64_t epoch) const {
  HyperVec lr(base_lr_.size());
  for (size_t b = 0; b < lr.size(); ++b) {
    lr[b] = base_lr_[b] *
            std::pow(gamma_[b], static_cast<double>(epoch / step_size_[b]));
  }
  return lr;
}

FusedExponentialLR::FusedExponentialLR(FusedOptimizer& opt, HyperVec gamma)
    : FusedLRScheduler(opt), gamma_(std::move(gamma)) {
  const size_t B = static_cast<size_t>(opt.array_size());
  if (gamma_.size() == 1) gamma_.assign(B, gamma_[0]);
  HFTA_CHECK(gamma_.size() == B, "FusedExponentialLR: gamma size");
}

HyperVec FusedExponentialLR::lr_at(int64_t epoch) const {
  HyperVec lr(base_lr_.size());
  for (size_t b = 0; b < lr.size(); ++b)
    lr[b] = base_lr_[b] * std::pow(gamma_[b], static_cast<double>(epoch));
  return lr;
}

FusedCosineAnnealingLR::FusedCosineAnnealingLR(FusedOptimizer& opt,
                                               std::vector<int64_t> t_max,
                                               HyperVec eta_min)
    : FusedLRScheduler(opt), t_max_(std::move(t_max)),
      eta_min_(std::move(eta_min)) {
  const size_t B = static_cast<size_t>(opt.array_size());
  if (t_max_.size() == 1) t_max_.assign(B, t_max_[0]);
  if (eta_min_.size() == 1) eta_min_.assign(B, eta_min_[0]);
  HFTA_CHECK(t_max_.size() == B && eta_min_.size() == B,
             "FusedCosineAnnealingLR: per-model vectors must have size 1 or B");
}

HyperVec FusedCosineAnnealingLR::lr_at(int64_t epoch) const {
  HyperVec lr(base_lr_.size());
  for (size_t b = 0; b < lr.size(); ++b) {
    const double t =
        static_cast<double>(epoch) / static_cast<double>(t_max_[b]);
    lr[b] = eta_min_[b] +
            (base_lr_[b] - eta_min_[b]) * (1.0 + std::cos(M_PI * t)) / 2.0;
  }
  return lr;
}

}  // namespace hfta::fused
