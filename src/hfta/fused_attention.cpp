#include "hfta/fused_attention.h"

#include <cmath>

#include "tensor/ops.h"

namespace hfta::fused {

FusedMultiheadAttention::FusedMultiheadAttention(int64_t B, int64_t embed_dim,
                                                 int64_t num_heads, Rng& rng)
    : FusedModule(B),
      embed_dim(embed_dim),
      num_heads(num_heads),
      head_dim(embed_dim / num_heads) {
  HFTA_CHECK(embed_dim % num_heads == 0,
             "FusedMultiheadAttention: embed_dim % num_heads != 0");
  in_proj = register_module(
      "in_proj", std::make_shared<FusedLinear>(B, embed_dim, 3 * embed_dim,
                                               /*bias=*/true, rng));
  out_proj = register_module(
      "out_proj", std::make_shared<FusedLinear>(B, embed_dim, embed_dim,
                                                /*bias=*/true, rng));
}

ag::Variable FusedMultiheadAttention::forward(const ag::Variable& x) {
  return forward_masked(x, Tensor());
}

ag::Variable FusedMultiheadAttention::forward_masked(const ag::Variable& x,
                                                     const Tensor& mask) {
  HFTA_CHECK(x.dim() == 4 && x.size(0) == array_size_ &&
                 x.size(3) == embed_dim,
             "FusedMultiheadAttention: expected [B, N, S, E], got ",
             shape_str(x.shape()));
  const int64_t B = array_size_, N = x.size(1), S = x.size(2);
  const int64_t H = num_heads, Dh = head_dim;

  ag::Variable flat = ag::reshape(x, {B, N * S, embed_dim});
  ag::Variable qkv = in_proj->forward(flat);  // [B, N*S, 3E]
  std::vector<ag::Variable> parts = ag::chunk(qkv, 3, 2);
  auto heads = [&](const ag::Variable& t) {
    // [B, N*S, E] -> [B*N*H, S, Dh]
    ag::Variable r = ag::reshape(t, {B, N, S, H, Dh});
    r = ag::permute(r, {0, 1, 3, 2, 4});  // [B, N, H, S, Dh]
    return ag::reshape(r, {B * N * H, S, Dh});
  };
  ag::Variable q = heads(parts[0]);
  ag::Variable k = heads(parts[1]);
  ag::Variable v = heads(parts[2]);

  ag::Variable scores = ag::mul_scalar(
      ag::bmm_nt(q, k), 1.f / std::sqrt(static_cast<float>(Dh)));
  if (mask.defined()) {
    HFTA_CHECK(mask.dim() == 2 && mask.size(0) == S && mask.size(1) == S,
               "attention mask must be [S, S]");
    scores = ag::add(scores, ag::constant(mask));
  }
  ag::Variable attn = ag::softmax(scores, -1);       // [B*N*H, S, S]
  ag::Variable ctx = ag::bmm(attn, v);               // [B*N*H, S, Dh]
  ctx = ag::reshape(ctx, {B, N, H, S, Dh});
  ctx = ag::permute(ctx, {0, 1, 3, 2, 4});           // [B, N, S, H, Dh]
  ctx = ag::reshape(ctx, {B, N * S, embed_dim});
  ag::Variable out = out_proj->forward(ctx);
  return ag::reshape(out, {B, N, S, embed_dim});
}

std::vector<FusedParam> FusedMultiheadAttention::fused_parameters() {
  auto out = in_proj->fused_parameters();
  auto o2 = out_proj->fused_parameters();
  out.insert(out.end(), o2.begin(), o2.end());
  return out;
}

FusedTransformerEncoderLayer::FusedTransformerEncoderLayer(
    int64_t B, int64_t embed_dim, int64_t num_heads, int64_t ff_dim,
    float dropout_p, const std::string& activation, Rng& rng)
    : FusedModule(B), use_gelu(activation == "gelu") {
  HFTA_CHECK(activation == "relu" || activation == "gelu",
             "activation must be relu or gelu, got ", activation);
  self_attn = register_module(
      "self_attn",
      std::make_shared<FusedMultiheadAttention>(B, embed_dim, num_heads, rng));
  linear1 = register_module(
      "linear1", std::make_shared<FusedLinear>(B, embed_dim, ff_dim, true, rng));
  linear2 = register_module(
      "linear2", std::make_shared<FusedLinear>(B, ff_dim, embed_dim, true, rng));
  norm1 = register_module(
      "norm1", std::make_shared<FusedLayerNorm>(B, Shape{embed_dim}, 1e-5f, rng));
  norm2 = register_module(
      "norm2", std::make_shared<FusedLayerNorm>(B, Shape{embed_dim}, 1e-5f, rng));
  drop = register_module("drop",
                         std::make_shared<FusedDropout>(B, dropout_p));
}

ag::Variable FusedTransformerEncoderLayer::forward(const ag::Variable& x) {
  return forward_masked(x, Tensor());
}

ag::Variable FusedTransformerEncoderLayer::forward_masked(
    const ag::Variable& x, const Tensor& mask) {
  const int64_t B = array_size_, N = x.size(1), S = x.size(2);
  const int64_t E = x.size(3);
  ag::Variable a = self_attn->forward_masked(x, mask);
  ag::Variable h = norm1->forward(ag::add(x, drop->forward(a)));
  ag::Variable flat = ag::reshape(h, {B, N * S, E});
  ag::Variable f = linear1->forward(flat);
  f = use_gelu ? ag::gelu(f) : ag::relu(f);
  f = linear2->forward(drop->forward(f));
  f = ag::reshape(f, {B, N, S, E});
  return norm2->forward(ag::add(h, drop->forward(f)));
}

std::vector<FusedParam> FusedTransformerEncoderLayer::fused_parameters() {
  return collect_fused_parameters(*this, array_size_);
}

}  // namespace hfta::fused
