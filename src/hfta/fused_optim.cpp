#include "hfta/fused_optim.h"

#include <algorithm>
#include <cmath>

#include "core/parallel.h"
#include "core/vec.h"

namespace hfta::fused {

// The per-model update loops below call the shared per-element kernels in
// core/vec — the same kernels nn::SGD / nn::Adam use — on each model's block
// of the fused parameter array. One implementation of each update expression
// keeps the fused step bit-equal to the B serial steps by construction.

HyperVec select_hyper(const HyperVec& v, const std::vector<int64_t>& keep) {
  HyperVec out;
  out.reserve(keep.size());
  for (int64_t b : keep)
    out.push_back(v.size() == 1 ? v[0] : v.at(static_cast<size_t>(b)));
  return out;
}

FusedOptimizer::FusedOptimizer(std::vector<FusedParam> params,
                               int64_t array_size)
    : params_(std::move(params)), array_size_(array_size) {
  for (const FusedParam& p : params_) {
    HFTA_CHECK(p.array_size == array_size_,
               "FusedOptimizer: parameter array size ", p.array_size,
               " != optimizer array size ", array_size_);
    HFTA_CHECK(p.var.numel() % array_size_ == 0,
               "FusedOptimizer: parameter numel not divisible by B");
  }
}

void FusedOptimizer::zero_grad() {
  for (auto& p : params_) p.var.zero_grad();
}

void FusedOptimizer::step(double grad_scale) {
  // Fallback for optimizers without a fused grad-scale path: unscale every
  // gradient in place (the same single multiply the fused path folds into
  // its update) and run the plain step. Chunks write disjoint elements, so
  // the partition cannot change any bit.
  const float gs = static_cast<float>(grad_scale);
  for (auto& p : params_) {
    if (!p.var.has_grad()) continue;
    ag::Variable v = p.var;
    float* pg = v.grad().data();
    const int64_t n = v.grad().numel();
    parallel_for(Partition::elems(n), [&](int64_t lo, int64_t hi) {
      vec::unary(vec::UnOp::kMulScalar, gs, 0.f, pg + lo, pg + lo, hi - lo);
    });
  }
  step();
}

HyperVec FusedOptimizer::expand(HyperVec v) const {
  HFTA_CHECK(v.size() == 1 || v.size() == static_cast<size_t>(array_size_),
             "hyper-parameter vector must have size 1 or B, got ", v.size());
  if (v.size() == 1) v.assign(static_cast<size_t>(array_size_), v[0]);
  return v;
}

void FusedOptimizer::set_lr(HyperVec lr) { lr_ = expand(std::move(lr)); }

void FusedOptimizer::repack_state_from(const FusedOptimizer& src,
                                       const std::vector<int64_t>& keep) {
  std::vector<RepackPick> picks;
  picks.reserve(keep.size());
  for (int64_t b : keep) picks.push_back(RepackPick{0, b});
  repack_state_from(std::vector<const FusedOptimizer*>{&src}, picks);
}

void FusedOptimizer::check_repack(
    const std::vector<const FusedOptimizer*>& sources,
    const std::vector<RepackPick>& picks) const {
  HFTA_CHECK(!sources.empty(), "repack_state_from: no sources");
  HFTA_CHECK(static_cast<int64_t>(picks.size()) == array_size_,
             "repack_state_from: optimizer array size ", array_size_,
             " != picks size ", picks.size());
  for (const FusedOptimizer* src : sources) {
    HFTA_CHECK(src != nullptr, "repack_state_from: null source");
    HFTA_CHECK(params_.size() == src->params_.size(),
               "repack_state_from: parameter count mismatch (", params_.size(),
               " vs ", src->params_.size(), ")");
    for (size_t i = 0; i < params_.size(); ++i) {
      HFTA_CHECK(
          params_[i].per_model_numel() == src->params_[i].per_model_numel(),
          "repack_state_from: per-model numel mismatch at param ", i);
    }
  }
  for (const RepackPick& p : picks) {
    HFTA_CHECK(p.source < sources.size(), "repack_state_from: pick source ",
               p.source, " out of range");
    HFTA_CHECK(p.model >= 0 && p.model < sources[p.source]->array_size_,
               "repack_state_from: pick model ", p.model, " out of range");
  }
}

void FusedOptimizer::gather_state(
    const std::function<const std::vector<Tensor>&(const FusedOptimizer&)>&
        state_of,
    std::vector<Tensor>* dst_state,
    const std::vector<const FusedOptimizer*>& sources,
    const std::vector<RepackPick>& picks) {
  for (size_t i = 0; i < params_.size(); ++i) {
    // Defined-ness must agree across sources: a survivor from a stepped
    // source cannot merge with one whose state was never initialized.
    for (const FusedOptimizer* src : sources)
      HFTA_CHECK(state_of(*src)[i].defined() ==
                     state_of(*sources[0])[i].defined(),
                 "repack_state_from: source state defined-ness differs at "
                 "param ", i, " (sources trained unequal step counts?)");
    if (!state_of(*sources[0])[i].defined()) continue;  // lazy, untouched
    Tensor dst = Tensor::zeros(params_[i].var.shape());
    float* pd = dst.data();
    const int64_t block = params_[i].per_model_numel();
    for (size_t j = 0; j < picks.size(); ++j) {
      const float* ps = state_of(*sources[picks[j].source])[i].data();
      const int64_t b = picks[j].model;
      std::copy(ps + b * block, ps + (b + 1) * block,
                pd + static_cast<int64_t>(j) * block);
    }
    (*dst_state)[i] = std::move(dst);
  }
}

// ---- FusedSGD -----------------------------------------------------------------

FusedSGD::FusedSGD(std::vector<FusedParam> params, int64_t array_size,
                   Options opt)
    : FusedOptimizer(std::move(params), array_size) {
  lr_ = expand(std::move(opt.lr));
  momentum_ = expand(std::move(opt.momentum));
  weight_decay_ = expand(std::move(opt.weight_decay));
  momentum_buf_.resize(params_.size());
}

void FusedSGD::step_impl(float grad_scale) {
  for (size_t i = 0; i < params_.size(); ++i) {
    FusedParam& fp = params_[i];
    if (!fp.var.has_grad()) continue;
    const int64_t block = fp.per_model_numel();
    const float* pg = fp.var.grad().data();
    float* pp = fp.var.mutable_value().data();
    Tensor& buf = momentum_buf_[i];
    const bool has_momentum =
        std::any_of(momentum_.begin(), momentum_.end(),
                    [](double m) { return m != 0.0; });
    // First step seeds buf = 0, so momentum*buf + g == g: the PyTorch
    // first-step rule without a special case (mirrors nn::SGD).
    if (has_momentum && !buf.defined()) buf = Tensor::zeros(fp.var.shape());
    float* pb = has_momentum ? buf.data() : nullptr;
    for (int64_t b = 0; b < array_size_; ++b) {
      const size_t ub = static_cast<size_t>(b);
      vec::SgdArgs s;
      s.lr = static_cast<float>(lr_[ub]);
      s.momentum = static_cast<float>(momentum_[ub]);
      s.weight_decay = static_cast<float>(weight_decay_[ub]);
      s.grad_scale = grad_scale;
      vec::sgd(s, pp + b * block, pg + b * block,
               pb != nullptr ? pb + b * block : nullptr, block);
    }
  }
}

void FusedSGD::repack_state_from(
    const std::vector<const FusedOptimizer*>& sources,
    const std::vector<RepackPick>& picks) {
  for (const FusedOptimizer* src : sources)
    HFTA_CHECK(dynamic_cast<const FusedSGD*>(src) != nullptr,
               "FusedSGD::repack_state_from: source is not SGD");
  check_repack(sources, picks);
  gather_state(
      [](const FusedOptimizer& o) -> const std::vector<Tensor>& {
        return static_cast<const FusedSGD&>(o).momentum_buf_;
      },
      &momentum_buf_, sources, picks);
}

// ---- FusedAdam -----------------------------------------------------------------

FusedAdam::FusedAdam(std::vector<FusedParam> params, int64_t array_size,
                     Options opt)
    : FusedOptimizer(std::move(params), array_size) {
  lr_ = expand(std::move(opt.lr));
  beta1_ = expand(std::move(opt.beta1));
  beta2_ = expand(std::move(opt.beta2));
  eps_ = expand(std::move(opt.eps));
  weight_decay_ = expand(std::move(opt.weight_decay));
  m_.resize(params_.size());
  v_.resize(params_.size());
}

void FusedAdam::step_impl(float grad_scale) {
  ++t_;
  for (size_t i = 0; i < params_.size(); ++i) {
    FusedParam& fp = params_[i];
    if (!fp.var.has_grad()) continue;
    const int64_t block = fp.per_model_numel();
    if (!m_[i].defined()) {
      m_[i] = Tensor::zeros(fp.var.shape());
      v_[i] = Tensor::zeros(fp.var.shape());
    }
    const float* pg = fp.var.grad().data();
    float* pp = fp.var.mutable_value().data();
    float* pm = m_[i].data();
    float* pv = v_[i].data();
    for (int64_t b = 0; b < array_size_; ++b) {
      const size_t ub = static_cast<size_t>(b);
      const double bc1 = 1.0 - std::pow(beta1_[ub], static_cast<double>(t_));
      const double bc2 = 1.0 - std::pow(beta2_[ub], static_cast<double>(t_));
      vec::AdamArgs s;
      s.weight_decay = static_cast<float>(weight_decay_[ub]);
      s.beta1 = static_cast<float>(beta1_[ub]);
      s.one_minus_beta1 = 1.f - s.beta1;
      s.beta2 = static_cast<float>(beta2_[ub]);
      s.one_minus_beta2 = 1.f - s.beta2;
      s.step_size = static_cast<float>(lr_[ub] / bc1);
      s.inv_bc2 = static_cast<float>(1.0 / bc2);
      s.eps = static_cast<float>(eps_[ub]);
      s.grad_scale = grad_scale;
      vec::adam(s, pp + b * block, pg + b * block, pm + b * block,
                pv + b * block, block);
    }
  }
}

void FusedAdam::repack_state_from(
    const std::vector<const FusedOptimizer*>& sources,
    const std::vector<RepackPick>& picks) {
  std::vector<const FusedAdam*> srcs;
  for (const FusedOptimizer* src : sources) {
    const auto* a = dynamic_cast<const FusedAdam*>(src);
    HFTA_CHECK(a != nullptr,
               "FusedAdam::repack_state_from: source is not Adam");
    srcs.push_back(a);
  }
  check_repack(sources, picks);
  // Survivors of one rung trained the same number of iterations, so the
  // scalar bias-correction step count must agree across every source.
  for (const FusedAdam* a : srcs)
    HFTA_CHECK(a->t_ == srcs[0]->t_,
               "FusedAdam::repack_state_from: sources disagree on step "
               "count (", a->t_, " vs ", srcs[0]->t_, ")");
  gather_state(
      [](const FusedOptimizer& o) -> const std::vector<Tensor>& {
        return static_cast<const FusedAdam&>(o).m_;
      },
      &m_, sources, picks);
  gather_state(
      [](const FusedOptimizer& o) -> const std::vector<Tensor>& {
        return static_cast<const FusedAdam&>(o).v_;
      },
      &v_, sources, picks);
  t_ = srcs[0]->t_;  // bias correction continues from the shared step count
}

// ---- FusedAdadelta ---------------------------------------------------------------

FusedAdadelta::FusedAdadelta(std::vector<FusedParam> params,
                             int64_t array_size, Options opt)
    : FusedOptimizer(std::move(params), array_size) {
  lr_ = expand(std::move(opt.lr));
  rho_ = expand(std::move(opt.rho));
  eps_ = expand(std::move(opt.eps));
  weight_decay_ = expand(std::move(opt.weight_decay));
  square_avg_.resize(params_.size());
  acc_delta_.resize(params_.size());
}

void FusedAdadelta::step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    FusedParam& fp = params_[i];
    if (!fp.var.has_grad()) continue;
    const int64_t block = fp.per_model_numel();
    if (!square_avg_[i].defined()) {
      square_avg_[i] = Tensor::zeros(fp.var.shape());
      acc_delta_[i] = Tensor::zeros(fp.var.shape());
    }
    const float* pg = fp.var.grad().data();
    float* pp = fp.var.mutable_value().data();
    float* sq = square_avg_[i].data();
    float* ad = acc_delta_[i].data();
    for (int64_t b = 0; b < array_size_; ++b) {
      const size_t ub = static_cast<size_t>(b);
      const float rho = static_cast<float>(rho_[ub]);
      const float eps = static_cast<float>(eps_[ub]);
      const float lr = static_cast<float>(lr_[ub]);
      const float wd = static_cast<float>(weight_decay_[ub]);
      for (int64_t j = b * block; j < (b + 1) * block; ++j) {
        const float g = pg[j] + wd * pp[j];
        sq[j] = rho * sq[j] + (1.f - rho) * g * g;
        const float delta = std::sqrt(ad[j] + eps) / std::sqrt(sq[j] + eps) * g;
        ad[j] = rho * ad[j] + (1.f - rho) * delta * delta;
        pp[j] -= lr * delta;
      }
    }
  }
}

void FusedAdadelta::repack_state_from(
    const std::vector<const FusedOptimizer*>& sources,
    const std::vector<RepackPick>& picks) {
  for (const FusedOptimizer* src : sources)
    HFTA_CHECK(dynamic_cast<const FusedAdadelta*>(src) != nullptr,
               "FusedAdadelta::repack_state_from: source is not Adadelta");
  check_repack(sources, picks);
  gather_state(
      [](const FusedOptimizer& o) -> const std::vector<Tensor>& {
        return static_cast<const FusedAdadelta&>(o).square_avg_;
      },
      &square_avg_, sources, picks);
  gather_state(
      [](const FusedOptimizer& o) -> const std::vector<Tensor>& {
        return static_cast<const FusedAdadelta&>(o).acc_delta_;
      },
      &acc_delta_, sources, picks);
}

}  // namespace hfta::fused
