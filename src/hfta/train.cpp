#include "hfta/train.h"

namespace hfta {

template <typename ZeroFn, typename StepFn>
ag::Variable TrainStep::run_impl(const ZeroFn& zero, const StepFn& step,
                                 const LossFn& loss_fn) {
  IterationScope scope;
  zero();
  ag::Variable loss = loss_fn();
  engine_.run(loss);
  step();
  ++stats_.steps;
  stats_.last_heap_allocs = scope.heap_allocs();
  stats_.last_pool_hits = scope.pool_hits();
  return loss;
}

template <typename ZeroFn, typename StepFn>
std::vector<ag::Variable> TrainStep::run_multi_impl(
    const ZeroFn& zero, const StepFn& step, const MultiLossFn& loss_fn) {
  IterationScope scope;
  zero();
  std::vector<ag::Variable> losses = loss_fn();
  for (const ag::Variable& loss : losses) engine_.run(loss);
  step();
  ++stats_.steps;
  stats_.last_heap_allocs = scope.heap_allocs();
  stats_.last_pool_hits = scope.pool_hits();
  return losses;
}

ag::Variable TrainStep::run(fused::FusedOptimizer& opt,
                            const LossFn& loss_fn) {
  return run_impl([&] { opt.zero_grad(); }, [&] { opt.step(); }, loss_fn);
}

ag::Variable TrainStep::run(nn::Optimizer& opt, const LossFn& loss_fn) {
  return run_impl([&] { opt.zero_grad(); }, [&] { opt.step(); }, loss_fn);
}

std::vector<ag::Variable> TrainStep::run(fused::FusedOptimizer& opt,
                                         const MultiLossFn& loss_fn) {
  return run_multi_impl([&] { opt.zero_grad(); }, [&] { opt.step(); },
                        loss_fn);
}

std::vector<ag::Variable> TrainStep::run(nn::Optimizer& opt,
                                         const MultiLossFn& loss_fn) {
  return run_multi_impl([&] { opt.zero_grad(); }, [&] { opt.step(); },
                        loss_fn);
}

ag::Variable TrainStep::run(nn::Module& model, const LossFn& loss_fn) {
  return run_impl([&] { model.zero_grad(); }, [] {}, loss_fn);
}

void TrainStep::backward(const ag::Variable& loss, Tensor seed) {
  engine_.run(loss, std::move(seed));
}

template <typename Target>
void TrainLoop::run_loop(int64_t steps, Target& target,
                         const std::function<ag::Variable(int64_t)>& loss_fn) {
  for (int64_t s = 0; s < steps; ++s) {
    ag::Variable loss = step_.run(target, [&] { return loss_fn(s); });
    if (opts_.on_step) opts_.on_step(s, loss);
    const bool epoch_end =
        opts_.steps_per_epoch > 0 && (s + 1) % opts_.steps_per_epoch == 0;
    if (epoch_end) {
      if (opts_.fused_scheduler) opts_.fused_scheduler->step();
      if (opts_.scheduler) opts_.scheduler->step();
      if (opts_.on_epoch_end) opts_.on_epoch_end((s + 1) / opts_.steps_per_epoch - 1);
    }
  }
}

void TrainLoop::run(int64_t steps, fused::FusedOptimizer& opt,
                    const std::function<ag::Variable(int64_t)>& loss_fn) {
  run_loop(steps, opt, loss_fn);
}

void TrainLoop::run(int64_t steps, nn::Optimizer& opt,
                    const std::function<ag::Variable(int64_t)>& loss_fn) {
  run_loop(steps, opt, loss_fn);
}

void TrainLoop::run(int64_t steps, nn::Module& model,
                    const std::function<ag::Variable(int64_t)>& loss_fn) {
  run_loop(steps, model, loss_fn);
}

}  // namespace hfta
