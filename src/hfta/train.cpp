#include "hfta/train.h"

#include "core/check.h"

namespace hfta {

namespace {

// FNV-1a over the optimizer's *structure*: which parameter impls and
// storages it steps, and their sizes. Learning-rate values are deliberately
// excluded — schedulers flow through replay (the real optimizer step runs
// each iteration); structural changes (Hyperband repack builds a new array
// and optimizer, fuse-mask/B changes re-register params) change the
// fingerprint and force recapture.
uint64_t fnv_mix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t fnv_var(uint64_t h, const ag::Variable& v) {
  h = fnv_mix(h, reinterpret_cast<uint64_t>(v.id()));
  h = fnv_mix(h, reinterpret_cast<uint64_t>(v.value().data()));
  h = fnv_mix(h, static_cast<uint64_t>(v.numel()));
  return h;
}

uint64_t fingerprint(const fused::FusedOptimizer& opt) {
  uint64_t h = 1469598103934665603ull;
  h = fnv_mix(h, static_cast<uint64_t>(opt.array_size()));
  h = fnv_mix(h, opt.fused_params().size());
  for (const fused::FusedParam& p : opt.fused_params()) h = fnv_var(h, p.var);
  return h;
}

uint64_t fingerprint(const nn::Optimizer& opt) {
  uint64_t h = 1469598103934665603ull;
  h = fnv_mix(h, opt.params().size());
  for (const ag::Variable& p : opt.params()) h = fnv_var(h, p);
  return h;
}

}  // namespace

void TrainStep::finish_stats(const IterationScope& scope) {
  const IterationScope::Stats s = scope.stats();
  stats_.last_heap_allocs = s.heap_allocs;
  stats_.last_pool_hits = s.pool_hits;
  stats_.last_node_constructions = s.node_constructions;
}

template <typename ZeroFn, typename StepFn>
ag::Variable TrainStep::run_impl(const ZeroFn& zero, const StepFn& step,
                                 const LossFn& loss_fn) {
  IterationScope scope;
  zero();
  ag::Variable loss = loss_fn();
  engine_.run(loss);
  step();
  ++stats_.steps;
  stats_.last_was_replay = false;
  finish_stats(scope);
  return loss;
}

template <typename ZeroFn, typename StepFn>
std::vector<ag::Variable> TrainStep::run_multi_impl(
    const ZeroFn& zero, const StepFn& step, const MultiLossFn& loss_fn) {
  IterationScope scope;
  zero();
  std::vector<ag::Variable> losses = loss_fn();
  for (const ag::Variable& loss : losses) engine_.run(loss);
  step();
  ++stats_.steps;
  stats_.last_was_replay = false;
  finish_stats(scope);
  return losses;
}

template <typename Opt>
ag::Variable TrainStep::run_cached(Opt& opt, const LossFn& loss_fn) {
  ProgramSlot& slot = programs_[static_cast<const void*>(&opt)];
  const uint64_t fp = fingerprint(opt);
  if (slot.fingerprinted && slot.fingerprint != fp) {
    // Same optimizer address, different structure (e.g. a repacked group
    // reusing a slot): the captured graph is stale.
    slot.program.clear();
    slot.eager_runs = 0;
  }
  slot.fingerprint = fp;
  slot.fingerprinted = true;
  slot.last_used = ++use_clock_;

  if (slot.program.captured()) {
    IterationScope scope;
    opt.zero_grad();
    slot.program.replay();
    opt.step();
    ++stats_.steps;
    ++stats_.replays;
    finish_stats(scope);
    stats_.last_was_replay = true;
    return slot.program.loss();
  }

  if (slot.eager_runs < warmup_) {
    ++slot.eager_runs;
    return run_impl([&] { opt.zero_grad(); }, [&] { opt.step(); }, loss_fn);
  }

  // Capture run: a full training step (eager kernels, the real backward)
  // recorded along the way. Only the forward/loss build runs under the
  // guard; finish_capture freezes the backward it then executes.
  IterationScope scope;
  opt.zero_grad();
  ag::Variable loss;
  {
    ag::StepProgram::CaptureGuard guard(slot.program);
    loss = loss_fn();
  }
  slot.program.finish_capture(engine_, loss);
  opt.step();
  ++stats_.steps;
  ++stats_.captures;
  stats_.last_was_replay = false;
  finish_stats(scope);
  evict_lru();
  return loss;
}

void TrainStep::enable_capture(int64_t warmup) {
  HFTA_CHECK(warmup >= 1, "enable_capture: warmup must be >= 1 (the pool "
             "must be warm before a program pins its buffers)");
  capture_ = true;
  warmup_ = warmup;
}

void TrainStep::disable_capture() {
  capture_ = false;
  programs_.clear();
}

void TrainStep::stage(Tensor* dst, const Tensor& src) {
  HFTA_CHECK(dst != nullptr, "stage: null destination");
  if (!dst->defined()) {
    // First stage: no program can have captured this tensor yet.
    *dst = src.clone();
    return;
  }
  if (dst->shape() == src.shape()) {
    dst->copy_(src);
    return;
  }
  // Shape change: captured graphs read the old buffer — recapture all.
  *dst = src.clone();
  invalidate_programs();
}

void TrainStep::invalidate_programs() { programs_.clear(); }

void TrainStep::drop_program(const void* opt_key) { programs_.erase(opt_key); }

void TrainStep::evict_lru() {
  // Bounds pinned-buffer memory when many optimizers share one TrainStep.
  constexpr size_t kMaxPrograms = 32;
  while (programs_.size() > kMaxPrograms) {
    auto oldest = programs_.begin();
    for (auto it = programs_.begin(); it != programs_.end(); ++it)
      if (it->second.last_used < oldest->second.last_used) oldest = it;
    programs_.erase(oldest);
  }
}

ag::Variable TrainStep::run(fused::FusedOptimizer& opt,
                            const LossFn& loss_fn) {
  if (capture_) return run_cached(opt, loss_fn);
  return run_impl([&] { opt.zero_grad(); }, [&] { opt.step(); }, loss_fn);
}

ag::Variable TrainStep::run(nn::Optimizer& opt, const LossFn& loss_fn) {
  if (capture_) return run_cached(opt, loss_fn);
  return run_impl([&] { opt.zero_grad(); }, [&] { opt.step(); }, loss_fn);
}

std::vector<ag::Variable> TrainStep::run(fused::FusedOptimizer& opt,
                                         const MultiLossFn& loss_fn) {
  return run_multi_impl([&] { opt.zero_grad(); }, [&] { opt.step(); },
                        loss_fn);
}

std::vector<ag::Variable> TrainStep::run(nn::Optimizer& opt,
                                         const MultiLossFn& loss_fn) {
  return run_multi_impl([&] { opt.zero_grad(); }, [&] { opt.step(); },
                        loss_fn);
}

ag::Variable TrainStep::run(nn::Module& model, const LossFn& loss_fn) {
  return run_impl([&] { model.zero_grad(); }, [] {}, loss_fn);
}

void TrainStep::backward(const ag::Variable& loss, Tensor seed) {
  engine_.run(loss, std::move(seed));
}

template <typename Target>
void TrainLoop::run_loop(int64_t steps, Target& target,
                         const std::function<ag::Variable(int64_t)>& loss_fn) {
  for (int64_t s = 0; s < steps; ++s) {
    ag::Variable loss = step_.run(target, [&] { return loss_fn(s); });
    if (opts_.on_step) opts_.on_step(s, loss);
    const bool epoch_end =
        opts_.steps_per_epoch > 0 && (s + 1) % opts_.steps_per_epoch == 0;
    if (epoch_end) {
      if (opts_.fused_scheduler) opts_.fused_scheduler->step();
      if (opts_.scheduler) opts_.scheduler->step();
      if (opts_.on_epoch_end) opts_.on_epoch_end((s + 1) / opts_.steps_per_epoch - 1);
    }
  }
}

void TrainLoop::run(int64_t steps, fused::FusedOptimizer& opt,
                    const std::function<ag::Variable(int64_t)>& loss_fn) {
  run_loop(steps, opt, loss_fn);
}

void TrainLoop::run(int64_t steps, nn::Optimizer& opt,
                    const std::function<ag::Variable(int64_t)>& loss_fn) {
  run_loop(steps, opt, loss_fn);
}

void TrainLoop::run(int64_t steps, nn::Module& model,
                    const std::function<ag::Variable(int64_t)>& loss_fn) {
  run_loop(steps, model, loss_fn);
}

}  // namespace hfta
