#include "hfta/train.h"

#include <atomic>

#include "core/check.h"
#include "core/parallel.h"
#include "core/vec.h"

namespace hfta {

namespace {

// FNV-1a over the optimizer's *structure*: which parameter impls and
// storages it steps, and their sizes. Learning-rate values are deliberately
// excluded — schedulers flow through replay (the real optimizer step runs
// each iteration); structural changes (Hyperband repack builds a new array
// and optimizer, fuse-mask/B changes re-register params) change the
// fingerprint and force recapture.
uint64_t fnv_mix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t fnv_var(uint64_t h, const ag::Variable& v) {
  h = fnv_mix(h, reinterpret_cast<uint64_t>(v.id()));
  h = fnv_mix(h, reinterpret_cast<uint64_t>(v.value().data()));
  h = fnv_mix(h, static_cast<uint64_t>(v.numel()));
  return h;
}

uint64_t fingerprint(const fused::FusedOptimizer& opt) {
  uint64_t h = 1469598103934665603ull;
  h = fnv_mix(h, static_cast<uint64_t>(opt.array_size()));
  h = fnv_mix(h, opt.fused_params().size());
  for (const fused::FusedParam& p : opt.fused_params()) h = fnv_var(h, p.var);
  return h;
}

uint64_t fingerprint(const nn::Optimizer& opt) {
  uint64_t h = 1469598103934665603ull;
  h = fnv_mix(h, opt.params().size());
  for (const ag::Variable& p : opt.params()) h = fnv_var(h, p);
  return h;
}

}  // namespace

void TrainStep::finish_stats(const IterationScope& scope) {
  const IterationScope::Stats s = scope.stats();
  stats_.last_heap_allocs = s.heap_allocs;
  stats_.last_pool_hits = s.pool_hits;
  stats_.last_node_constructions = s.node_constructions;
}

template <typename ZeroFn, typename StepFn>
ag::Variable TrainStep::run_impl(const ZeroFn& zero, const StepFn& step,
                                 const LossFn& loss_fn, bool autocast,
                                 Tensor seed) {
  IterationScope scope;
  zero();
  ag::Variable loss;
  {
    // kF32 pins autocast OFF for fp32 steps, regardless of ambient guards.
    ag::AutocastGuard guard(autocast ? amp_dtype_ : DType::kF32);
    loss = loss_fn();
  }
  engine_.run(loss, std::move(seed));
  step();
  ++stats_.steps;
  stats_.last_was_replay = false;
  finish_stats(scope);
  return loss;
}

template <typename ZeroFn, typename StepFn>
std::vector<ag::Variable> TrainStep::run_multi_impl(
    const ZeroFn& zero, const StepFn& step, const MultiLossFn& loss_fn) {
  IterationScope scope;
  zero();
  std::vector<ag::Variable> losses = loss_fn();
  for (const ag::Variable& loss : losses) engine_.run(loss);
  step();
  ++stats_.steps;
  stats_.last_was_replay = false;
  finish_stats(scope);
  return losses;
}

template <typename Opt>
ag::Variable TrainStep::run_cached(Opt& opt, const LossFn& loss_fn) {
  ProgramSlot& slot = programs_[static_cast<const void*>(&opt)];
  uint64_t fp = fingerprint(opt);
  if (amp_) {
    // Precision is structural: an AMP program's thunks include the recorded
    // casts, so toggling AMP (or changing its dtype) must recapture, not
    // replay a stale-precision graph.
    fp = fnv_mix(fp, 0x9e3779b97f4a7c15ull);
    fp = fnv_mix(fp, static_cast<uint64_t>(amp_dtype_));
  }
  if (slot.fingerprinted && slot.fingerprint != fp) {
    // Same optimizer address, different structure (e.g. a repacked group
    // reusing a slot): the captured graph is stale.
    slot.program.clear();
    slot.eager_runs = 0;
  }
  slot.fingerprint = fp;
  slot.fingerprinted = true;
  slot.last_used = ++use_clock_;

  if (slot.program.captured()) {
    IterationScope scope;
    opt.zero_grad();
    // The tape's seed shares amp_seed_'s storage; refreshing it in place
    // is how a scale change reaches every cached program without
    // recapture.
    if (amp_) refresh_amp_seed();
    slot.program.replay();
    amp_step(opt);
    ++stats_.steps;
    ++stats_.replays;
    finish_stats(scope);
    stats_.last_was_replay = true;
    return slot.program.loss();
  }

  if (slot.eager_runs < warmup_) {
    ++slot.eager_runs;
    return run_impl([&] { opt.zero_grad(); }, [&] { amp_step(opt); }, loss_fn,
                    amp_, backward_seed());
  }

  // Capture run: a full training step (eager kernels, the real backward)
  // recorded along the way. Only the forward/loss build runs under the
  // guards; finish_capture freezes the backward it then executes.
  IterationScope scope;
  opt.zero_grad();
  ag::Variable loss;
  {
    ag::StepProgram::CaptureGuard guard(slot.program);
    ag::AutocastGuard amp_guard(amp_ ? amp_dtype_ : DType::kF32);
    loss = loss_fn();
  }
  slot.program.finish_capture(engine_, loss, backward_seed());
  amp_step(opt);
  ++stats_.steps;
  ++stats_.captures;
  stats_.last_was_replay = false;
  finish_stats(scope);
  evict_lru();
  return loss;
}

void TrainStep::enable_capture(int64_t warmup) {
  HFTA_CHECK(warmup >= 1, "enable_capture: warmup must be >= 1 (the pool "
             "must be warm before a program pins its buffers)");
  capture_ = true;
  warmup_ = warmup;
}

void TrainStep::disable_capture() {
  capture_ = false;
  programs_.clear();
}

void TrainStep::stage(Tensor* dst, const Tensor& src) {
  HFTA_CHECK(dst != nullptr, "stage: null destination");
  if (!dst->defined()) {
    // First stage: no program can have captured this tensor yet.
    *dst = src.clone();
    return;
  }
  if (dst->shape() == src.shape()) {
    dst->copy_(src);
    return;
  }
  // Shape change: captured graphs read the old buffer — recapture all.
  *dst = src.clone();
  invalidate_programs();
}

void TrainStep::invalidate_programs() { programs_.clear(); }

void TrainStep::drop_program(const void* opt_key) { programs_.erase(opt_key); }

void TrainStep::evict_lru() {
  // Bounds pinned-buffer memory when many optimizers share one TrainStep.
  constexpr size_t kMaxPrograms = 32;
  while (programs_.size() > kMaxPrograms) {
    auto oldest = programs_.begin();
    for (auto it = programs_.begin(); it != programs_.end(); ++it)
      if (it->second.last_used < oldest->second.last_used) oldest = it;
    programs_.erase(oldest);
  }
}

void TrainStep::enable_amp(const AmpOptions& opts) {
  HFTA_CHECK(opts.dtype != DType::kF32,
             "enable_amp: dtype must be f16 or bf16");
  amp_ = true;
  amp_dtype_ = opts.dtype;
  scaler_ = fused::LossScaler(opts.scaler);
}

void TrainStep::refresh_amp_seed() {
  // The scale only moves on overflow or growth-interval events, so most
  // steps the seed already holds the right value and the fill is skipped.
  const float s = static_cast<float>(scaler_.scale());
  if (amp_seed_.defined() && amp_seed_value_ == s) return;
  if (!amp_seed_.defined()) amp_seed_ = Tensor::empty({});
  amp_seed_.fill_(s);
  amp_seed_value_ = s;
}

Tensor TrainStep::backward_seed() {
  if (!amp_) return Tensor();
  refresh_amp_seed();
  return amp_seed_;
}

namespace {

// Read-only finiteness scan of one gradient: the same 1/S multiply the old
// in-place unscale performed, but only the verdict survives (the buffer is
// untouched — zero_grad wipes it next iteration anyway). The verdict is an
// OR over elements, so neither the partition nor the lane schedule can
// change it.
bool grad_finite_scaled(const Tensor& grad, float inv) {
  const float* p = grad.data();
  const int64_t n = grad.numel();
  std::atomic<bool> found_inf{false};
  parallel_for(Partition::elems(n), [&](int64_t lo, int64_t hi) {
    if (!vec::finite_scaled(p + lo, inv, hi - lo))
      found_inf.store(true, std::memory_order_relaxed);
  });
  return !found_inf.load(std::memory_order_relaxed);
}

}  // namespace

bool TrainStep::grads_finite(fused::FusedOptimizer& opt, double inv_scale) {
  const float inv = static_cast<float>(inv_scale);
  bool finite = true;
  for (const fused::FusedParam& p : opt.fused_params()) {
    ag::Variable v = p.var;  // shared impl — grad() is the live gradient
    finite &= grad_finite_scaled(v.grad(), inv);
  }
  return finite;
}

bool TrainStep::grads_finite(nn::Optimizer& opt, double inv_scale) {
  const float inv = static_cast<float>(inv_scale);
  bool finite = true;
  for (const ag::Variable& p : opt.params()) {
    ag::Variable v = p;
    finite &= grad_finite_scaled(v.grad(), inv);
  }
  return finite;
}

template <typename Opt>
void TrainStep::amp_step(Opt& opt) {
  if (!amp_) {
    opt.step();
    return;
  }
  // Scan every gradient (no short-circuit: the scan is the only pass that
  // touches them, and a consistent verdict costs one read). When clean, the
  // optimizer folds 1/S into its gradient reads — same bits as unscaling
  // the buffers first, one fewer memory pass per parameter.
  const double inv = 1.0 / scaler_.scale();
  const bool finite = grads_finite(opt, inv);
  if (finite) {
    opt.step(inv);
  } else {
    ++stats_.amp_overflow_skips;
  }
  scaler_.update(!finite);
}

ag::Variable TrainStep::run(fused::FusedOptimizer& opt,
                            const LossFn& loss_fn) {
  if (capture_) return run_cached(opt, loss_fn);
  return run_impl([&] { opt.zero_grad(); }, [&] { amp_step(opt); }, loss_fn,
                  amp_, backward_seed());
}

ag::Variable TrainStep::run(nn::Optimizer& opt, const LossFn& loss_fn) {
  if (capture_) return run_cached(opt, loss_fn);
  return run_impl([&] { opt.zero_grad(); }, [&] { amp_step(opt); }, loss_fn,
                  amp_, backward_seed());
}

std::vector<ag::Variable> TrainStep::run(fused::FusedOptimizer& opt,
                                         const MultiLossFn& loss_fn) {
  HFTA_CHECK(!amp_, "multi-loss run() does not support AMP (each loss would "
             "need its own scale bookkeeping)");
  return run_multi_impl([&] { opt.zero_grad(); }, [&] { opt.step(); },
                        loss_fn);
}

std::vector<ag::Variable> TrainStep::run(nn::Optimizer& opt,
                                         const MultiLossFn& loss_fn) {
  HFTA_CHECK(!amp_, "multi-loss run() does not support AMP (each loss would "
             "need its own scale bookkeeping)");
  return run_multi_impl([&] { opt.zero_grad(); }, [&] { opt.step(); },
                        loss_fn);
}

ag::Variable TrainStep::run(nn::Module& model, const LossFn& loss_fn) {
  // Autocast applies (AMP numerics for probes/eval) but the seed does not:
  // with no optimizer step to protect, scaled gradients would just leak.
  return run_impl([&] { model.zero_grad(); }, [] {}, loss_fn, amp_, Tensor());
}

void TrainStep::backward(const ag::Variable& loss, Tensor seed) {
  engine_.run(loss, std::move(seed));
}

template <typename Target>
void TrainLoop::run_loop(int64_t steps, Target& target,
                         const std::function<ag::Variable(int64_t)>& loss_fn) {
  for (int64_t s = 0; s < steps; ++s) {
    ag::Variable loss = step_.run(target, [&] { return loss_fn(s); });
    if (opts_.on_step) opts_.on_step(s, loss);
    const bool epoch_end =
        opts_.steps_per_epoch > 0 && (s + 1) % opts_.steps_per_epoch == 0;
    if (epoch_end) {
      if (opts_.fused_scheduler) opts_.fused_scheduler->step();
      if (opts_.scheduler) opts_.scheduler->step();
      if (opts_.on_epoch_end) opts_.on_epoch_end((s + 1) / opts_.steps_per_epoch - 1);
    }
  }
}

void TrainLoop::run(int64_t steps, fused::FusedOptimizer& opt,
                    const std::function<ag::Variable(int64_t)>& loss_fn) {
  run_loop(steps, opt, loss_fn);
}

void TrainLoop::run(int64_t steps, nn::Optimizer& opt,
                    const std::function<ag::Variable(int64_t)>& loss_fn) {
  run_loop(steps, opt, loss_fn);
}

void TrainLoop::run(int64_t steps, nn::Module& model,
                    const std::function<ag::Variable(int64_t)>& loss_fn) {
  run_loop(steps, model, loss_fn);
}

}  // namespace hfta
