// Horizontally fused optimizers. Where the unfused optimizer multiplies by
// a scalar learning rate, the fused one multiplies by a *vector* of B
// per-model learning rates broadcast over each parameter's model blocks
// (paper §3 "HFTA Optimizers and Learning Rate Schedulers").
//
// All fused parameters pack their B model blocks contiguously along dim 0
// (FusedParam), so "broadcast over model b's slice" is a strided loop.
#pragma once

#include <functional>
#include <vector>

#include "hfta/fused_ops.h"

namespace hfta::fused {

/// Per-model hyper-parameter vector: size B, or size 1 (shared by all).
using HyperVec = std::vector<double>;

/// Selects entries of a size-B (or size-1, broadcast) hyper-vector for the
/// surviving models of a repacked array: out[j] = v[keep[j]].
HyperVec select_hyper(const HyperVec& v, const std::vector<int64_t>& keep);

class FusedOptimizer {
 public:
  FusedOptimizer(std::vector<FusedParam> params, int64_t array_size);
  virtual ~FusedOptimizer() = default;

  virtual void step() = 0;
  /// AMP step: applies grad_scale (1/S) to every gradient READ — the fused
  /// per-element kernels fold the multiply into the update, so gradients
  /// stay scaled in memory (zero_grad wipes them next iteration) and no
  /// separate unscale pass runs. Bit-identical to unscaling in place first.
  /// The base implementation IS unscale-in-place + step(), for optimizers
  /// without a fused grad-scale path (Adadelta).
  virtual void step(double grad_scale);
  void zero_grad();

  int64_t array_size() const { return array_size_; }
  /// Per-model learning rates (always size B).
  const HyperVec& lr() const { return lr_; }
  void set_lr(HyperVec lr);
  /// The fused parameters this optimizer steps (fingerprinted by step
  /// programs to detect structural changes such as a Hyperband repack).
  const std::vector<FusedParam>& fused_params() const { return params_; }

  /// Carries optimizer state across a FusionPlan::repack_multi: this
  /// optimizer (freshly built over the repacked array's parameters, array
  /// size = picks.size()) receives model picks[j].model's state slice
  /// (momentum / Adam moments / step count) from sources[picks[j].source]
  /// as its model-j slice, so every survivor's next step is bit-identical
  /// to the step its source array would have taken. Parameters must align
  /// index-wise across all sources (the planner emits steps — and
  /// therefore fused parameters — in the same order for the same model
  /// graph); all sources must be this concrete optimizer type and agree on
  /// shared scalar state (Adam's step count).
  virtual void repack_state_from(const std::vector<const FusedOptimizer*>& sources,
                                 const std::vector<RepackPick>& picks) = 0;
  /// Single-source convenience (model keep[j] of `src` becomes model j):
  /// thin delegate to the multi-source gather — one code path for both.
  void repack_state_from(const FusedOptimizer& src,
                         const std::vector<int64_t>& keep);

 protected:
  /// Shared repack_state_from validation: array/param-count alignment,
  /// per-model block sizes, pick ranges.
  void check_repack(const std::vector<const FusedOptimizer*>& sources,
                   const std::vector<RepackPick>& picks) const;
  /// Gathers per-model blocks of one state tensor family across sources:
  /// dst[i] model-j block = sources[picks[j].source]'s state_of() tensor i,
  /// block picks[j].model. Defined-ness must agree across sources (all
  /// lazily uninitialized -> dst stays undefined, preserving lazy-init
  /// flags; mixed defined-ness is a step-count mismatch and rejected).
  void gather_state(
      const std::function<const std::vector<Tensor>&(const FusedOptimizer&)>&
          state_of,
      std::vector<Tensor>* dst_state,
      const std::vector<const FusedOptimizer*>& sources,
      const std::vector<RepackPick>& picks);
  /// Resolves v[b] for vectors of size B or 1.
  static double at(const HyperVec& v, int64_t b) {
    return v.size() == 1 ? v[0] : v[static_cast<size_t>(b)];
  }
  HyperVec expand(HyperVec v) const;

  std::vector<FusedParam> params_;
  int64_t array_size_;
  HyperVec lr_;
};

/// Fused SGD with per-model lr / momentum / weight decay.
class FusedSGD : public FusedOptimizer {
 public:
  struct Options {
    HyperVec lr = {0.01};
    HyperVec momentum = {0.0};
    HyperVec weight_decay = {0.0};
  };
  FusedSGD(std::vector<FusedParam> params, int64_t array_size, Options opt);
  void step() override { step_impl(1.f); }
  void step(double grad_scale) override {
    step_impl(static_cast<float>(grad_scale));
  }
  using FusedOptimizer::repack_state_from;
  void repack_state_from(const std::vector<const FusedOptimizer*>& sources,
                         const std::vector<RepackPick>& picks) override;

 private:
  void step_impl(float grad_scale);
  HyperVec momentum_, weight_decay_;
  std::vector<Tensor> momentum_buf_;
};

/// Fused Adam with per-model lr / beta1 / beta2 / eps / weight decay.
class FusedAdam : public FusedOptimizer {
 public:
  struct Options {
    HyperVec lr = {1e-3};
    HyperVec beta1 = {0.9};
    HyperVec beta2 = {0.999};
    HyperVec eps = {1e-8};
    HyperVec weight_decay = {0.0};
  };
  FusedAdam(std::vector<FusedParam> params, int64_t array_size, Options opt);
  void step() override { step_impl(1.f); }
  void step(double grad_scale) override {
    step_impl(static_cast<float>(grad_scale));
  }
  using FusedOptimizer::repack_state_from;
  void repack_state_from(const std::vector<const FusedOptimizer*>& sources,
                         const std::vector<RepackPick>& picks) override;

 private:
  void step_impl(float grad_scale);
  HyperVec beta1_, beta2_, eps_, weight_decay_;
  std::vector<Tensor> m_, v_;
  int64_t t_ = 0;
};

/// Fused Adadelta with per-model lr / rho / eps / weight decay.
class FusedAdadelta : public FusedOptimizer {
 public:
  struct Options {
    HyperVec lr = {1.0};
    HyperVec rho = {0.9};
    HyperVec eps = {1e-6};
    HyperVec weight_decay = {0.0};
  };
  FusedAdadelta(std::vector<FusedParam> params, int64_t array_size,
                Options opt);
  using FusedOptimizer::step;  // keep the grad_scale fallback visible
  void step() override;
  using FusedOptimizer::repack_state_from;
  void repack_state_from(const std::vector<const FusedOptimizer*>& sources,
                         const std::vector<RepackPick>& picks) override;

 private:
  HyperVec rho_, eps_, weight_decay_;
  std::vector<Tensor> square_avg_, acc_delta_;
};

}  // namespace hfta::fused
