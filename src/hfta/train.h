// The iteration engine's driver layer: one TrainStep/TrainLoop API for
// every training loop in the repo (examples, benches, the HFHT executor).
//
// Every hand-rolled loop here used to repeat the same five lines —
// zero_grad, forward, loss, backward, optimizer step — and every copy paid
// the full per-iteration overhead: a fresh autograd traversal scratch per
// backward and heap-allocated storage for every activation and gradient.
// TrainStep owns the two reusable pieces (an ag::Engine and the pool's
// IterationScope accounting) and drives the canonical sequence; TrainLoop
// adds epoch boundaries, scheduler stepping, and scoring/tracing hooks on
// top. Porting a loop onto TrainStep is what makes pooling + engine reuse
// apply to it — and keeps it bit-exact, because the step order is the same
// five lines it always ran.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "autograd/autocast.h"
#include "autograd/engine.h"
#include "autograd/step_program.h"
#include "core/storage_pool.h"
#include "hfta/fused_optim.h"
#include "hfta/fused_sched.h"
#include "hfta/loss_scaling.h"
#include "nn/module.h"
#include "nn/optim.h"
#include "nn/sched.h"

namespace hfta {

/// Builds one iteration's loss graph (forward + loss, under the caller's
/// data). Runs inside the step's pooled iteration scope.
using LossFn = std::function<ag::Variable()>;
/// Multi-loss variant (e.g. a GAN discriminator's real and fake terms):
/// each loss runs backward, in order, before the single optimizer step.
using MultiLossFn = std::function<std::vector<ag::Variable>()>;

/// One training iteration: zero_grad -> forward/loss -> backward (through
/// the long-lived engine) -> optimizer step, wrapped in an IterationScope
/// so per-step allocation behavior is observable. One TrainStep may drive
/// several models/optimizers (the engine scratch is graph-agnostic);
/// steady-state steps hit the storage pool for every tensor they allocate.
class TrainStep {
 public:
  struct Stats {
    int64_t steps = 0;               // iterations driven by this TrainStep
    uint64_t last_heap_allocs = 0;   // storage heap allocs in the last step
    uint64_t last_pool_hits = 0;     // pool recycling hits in the last step
    uint64_t last_node_constructions = 0;  // ag::Node builds in the last step
    bool last_was_replay = false;    // last step replayed a step program
    int64_t captures = 0;            // step programs captured so far
    int64_t replays = 0;             // steps served tape-free by replay
    int64_t amp_overflow_skips = 0;  // AMP steps skipped on non-finite grads
  };

  /// Fused-array iteration: `opt` is zero_grad'ed and stepped around the
  /// loss built by `loss_fn`. Returns the loss variable (its value is
  /// alive; its tape has been consumed by backward).
  ag::Variable run(fused::FusedOptimizer& opt, const LossFn& loss_fn);
  /// Serial counterpart (one of the B per-model runs).
  ag::Variable run(nn::Optimizer& opt, const LossFn& loss_fn);

  /// Multi-loss iterations (losses run backward in order, one step).
  std::vector<ag::Variable> run(fused::FusedOptimizer& opt,
                                const MultiLossFn& loss_fn);
  std::vector<ag::Variable> run(nn::Optimizer& opt,
                                const MultiLossFn& loss_fn);

  /// Optimizer-free iteration (timing probes, gradient checks): the
  /// model's grads are zeroed instead and no step is taken.
  ag::Variable run(nn::Module& model, const LossFn& loss_fn);

  /// Backward through the reusable engine, for hand-assembled iterations
  /// that cannot use run() (seeded backward, interleaved updates).
  void backward(const ag::Variable& loss, Tensor seed = Tensor());

  // ---- mixed precision (autocast + dynamic loss scaling) ----------------
  //
  // With AMP enabled, the single-loss run() overloads build the loss under
  // an AutocastGuard (GEMM/conv-class ops take low-precision inputs and
  // accumulate f32; see autograd/autocast.h) and apply dynamic loss
  // scaling through the backward SEED: seeding backward with the scale S
  // computes d(S*L)/dw without touching the loss value that run() returns.
  // Before the optimizer step, every gradient is scanned READ-ONLY for
  // inf/nan after the 1/S multiply (allocation-free); when all are finite
  // the optimizer folds 1/S into its update via step(grad_scale) — bit-
  // identical to unscaling the buffers first, with one fewer memory pass.
  // A non-finite gradient skips the step and backs the scale off. Scales
  // stay powers of two, so scale/unscale are exact exponent shifts and
  // fused-vs-serial bit-exactness survives.
  //
  // Capture/replay compatible: casts are recorded ops, the captured
  // BackwardTape's seed SHARES the persistent seed tensor's storage (a
  // scale change is an in-place refresh, not a recapture), and the AMP
  // mode + dtype are mixed into each program's fingerprint so toggling
  // precision recaptures. The optimizer-free run(Module&) overload
  // autocasts but does not scale (there is no step to protect); the
  // multi-loss overloads reject AMP.

  struct AmpOptions {
    DType dtype = DType::kBF16;
    fused::LossScaler::Options scaler;
  };

  void enable_amp(const AmpOptions& opts);
  void enable_amp() { enable_amp(AmpOptions()); }
  /// Turns AMP off (cached fp32 programs, fingerprinted separately, stay).
  void disable_amp() { amp_ = false; }
  bool amp_enabled() const { return amp_; }
  DType amp_dtype() const { return amp_dtype_; }
  /// The dynamic scale controller. Persists for the TrainStep's lifetime —
  /// in the HFHT executor that means across Hyperband rungs and repacks.
  fused::LossScaler& scaler() { return scaler_; }
  const fused::LossScaler& scaler() const { return scaler_; }

  // ---- step-program capture & replay ---------------------------------
  //
  // Opt-in (a data-varying loss builder would silently train on stale
  // data): once enabled, the single-loss optimizer overloads of run()
  // drive `warmup` eager steps per optimizer, capture the next step into
  // an ag::StepProgram, and replay it thereafter — no Node construction,
  // no closure allocation, no topo sort, and (warm) no heap allocation.
  //
  // Static-input discipline: during replay the loss builder is NOT
  // called, so per-step data must be staged in place into the tensors the
  // capture run read (see stage()). Per-step scalar hypers (learning
  // rates) stay live — the real optimizer step runs around every replay.
  //
  // Invalidation: each program is fingerprinted over the optimizer's
  // structure (param identities, storages, shapes, array size). A repack,
  // fuse-mask change, or any param re-registration changes the
  // fingerprint and recaptures automatically; stage() with a new shape
  // invalidates every program (batch-size change reshapes the graph).

  /// Enables capture on this TrainStep after `warmup` eager steps per
  /// optimizer (>= 1 so pooled buffers are warm when the program pins
  /// them).
  void enable_capture(int64_t warmup = 1);
  /// Disables capture and drops every cached program.
  void disable_capture();
  bool capture_enabled() const { return capture_; }

  /// Stages per-step data into `*dst` (a tensor the captured graph
  /// reads): same-shape sources are copied in place so replays observe
  /// them; a shape change reassigns the tensor and invalidates all
  /// programs (the graph must be recaptured over the new buffer).
  void stage(Tensor* dst, const Tensor& src);

  /// Drops every cached program (next runs re-warm and recapture).
  void invalidate_programs();
  /// Drops the program cached for one optimizer (pass its address) —
  /// e.g. when a Hyperband group retires and its optimizer is destroyed.
  void drop_program(const void* opt_key);
  int64_t program_count() const {
    return static_cast<int64_t>(programs_.size());
  }

  const Stats& stats() const { return stats_; }
  ag::Engine& engine() { return engine_; }

 private:
  struct ProgramSlot {
    uint64_t fingerprint = 0;
    bool fingerprinted = false;
    int64_t eager_runs = 0;  // warmup progress before capture
    int64_t last_used = 0;   // LRU clock value
    ag::StepProgram program;
  };

  template <typename ZeroFn, typename StepFn>
  ag::Variable run_impl(const ZeroFn& zero, const StepFn& step,
                        const LossFn& loss_fn, bool autocast, Tensor seed);
  template <typename ZeroFn, typename StepFn>
  std::vector<ag::Variable> run_multi_impl(const ZeroFn& zero,
                                           const StepFn& step,
                                           const MultiLossFn& loss_fn);
  template <typename Opt>
  ag::Variable run_cached(Opt& opt, const LossFn& loss_fn);
  void finish_stats(const IterationScope& scope);
  void evict_lru();

  /// Rewrites the persistent scalar seed tensor with the current scale
  /// (in place — captured tapes share its storage).
  void refresh_amp_seed();
  /// The seed for this step's backward: the refreshed scale tensor under
  /// AMP, undefined (seed-with-ones) otherwise.
  Tensor backward_seed();
  /// Read-only scan: true iff every gradient element times inv_scale is
  /// finite (the grads themselves are left scaled — the optimizer applies
  /// 1/S via step(grad_scale)).
  bool grads_finite(fused::FusedOptimizer& opt, double inv_scale);
  bool grads_finite(nn::Optimizer& opt, double inv_scale);
  /// The optimizer step under the AMP contract: finiteness scan first,
  /// step(1/S) when clean, skip + backoff on overflow, scaler update either
  /// way. Plain opt.step() when AMP is off.
  template <typename Opt>
  void amp_step(Opt& opt);

  ag::Engine engine_;
  Stats stats_;
  std::unordered_map<const void*, ProgramSlot> programs_;
  bool capture_ = false;
  int64_t warmup_ = 1;
  int64_t use_clock_ = 0;
  bool amp_ = false;
  DType amp_dtype_ = DType::kBF16;
  fused::LossScaler scaler_;
  Tensor amp_seed_;  // persistent scalar; every captured tape shares it
  float amp_seed_value_ = 0.f;  // last value written; skips redundant fills
};

/// Drives a TrainStep over a fixed number of iterations with epoch
/// boundaries, scheduler stepping, and hooks — the loop around the loop.
/// The loss builder receives the step index (for data selection/logging);
/// hooks run after the optimizer step so they observe the updated model.
class TrainLoop {
 public:
  struct Options {
    /// Iterations per epoch; 0 disables epoch boundaries. Schedulers and
    /// on_epoch_end fire after each full epoch.
    int64_t steps_per_epoch = 0;
    fused::FusedLRScheduler* fused_scheduler = nullptr;
    nn::LRScheduler* scheduler = nullptr;
    std::function<void(int64_t epoch)> on_epoch_end;
    /// Scoring/tracing hook: (step index, that step's loss).
    std::function<void(int64_t step, const ag::Variable& loss)> on_step;
    /// Capture the step into a replayable program after `capture_warmup`
    /// eager steps (see TrainStep::enable_capture and its static-input
    /// discipline — the loss builder is not called during replay).
    bool capture = false;
    int64_t capture_warmup = 1;
  };

  TrainLoop() = default;
  // Delegating overload instead of `Options opts = {}`: GCC rejects
  // defaulted {} for nested structs with NSDMI.
  explicit TrainLoop(Options opts) : opts_(std::move(opts)) {
    if (opts_.capture) step_.enable_capture(opts_.capture_warmup);
  }

  /// Runs `steps` iterations of loss_fn against the fused optimizer.
  void run(int64_t steps, fused::FusedOptimizer& opt,
           const std::function<ag::Variable(int64_t)>& loss_fn);
  /// Serial-optimizer variant.
  void run(int64_t steps, nn::Optimizer& opt,
           const std::function<ag::Variable(int64_t)>& loss_fn);
  /// Optimizer-free variant (timing probes).
  void run(int64_t steps, nn::Module& model,
           const std::function<ag::Variable(int64_t)>& loss_fn);

  /// The underlying TrainStep (shared engine/stats; also usable directly
  /// for interleaved extra steps, e.g. serial verification twins).
  TrainStep& step() { return step_; }

 private:
  template <typename Target>
  void run_loop(int64_t steps, Target& target,
                const std::function<ag::Variable(int64_t)>& loss_fn);

  Options opts_;
  TrainStep step_;
};

}  // namespace hfta
