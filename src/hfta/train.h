// The iteration engine's driver layer: one TrainStep/TrainLoop API for
// every training loop in the repo (examples, benches, the HFHT executor).
//
// Every hand-rolled loop here used to repeat the same five lines —
// zero_grad, forward, loss, backward, optimizer step — and every copy paid
// the full per-iteration overhead: a fresh autograd traversal scratch per
// backward and heap-allocated storage for every activation and gradient.
// TrainStep owns the two reusable pieces (an ag::Engine and the pool's
// IterationScope accounting) and drives the canonical sequence; TrainLoop
// adds epoch boundaries, scheduler stepping, and scoring/tracing hooks on
// top. Porting a loop onto TrainStep is what makes pooling + engine reuse
// apply to it — and keeps it bit-exact, because the step order is the same
// five lines it always ran.
#pragma once

#include <functional>
#include <vector>

#include "autograd/engine.h"
#include "core/storage_pool.h"
#include "hfta/fused_optim.h"
#include "hfta/fused_sched.h"
#include "nn/module.h"
#include "nn/optim.h"
#include "nn/sched.h"

namespace hfta {

/// Builds one iteration's loss graph (forward + loss, under the caller's
/// data). Runs inside the step's pooled iteration scope.
using LossFn = std::function<ag::Variable()>;
/// Multi-loss variant (e.g. a GAN discriminator's real and fake terms):
/// each loss runs backward, in order, before the single optimizer step.
using MultiLossFn = std::function<std::vector<ag::Variable>()>;

/// One training iteration: zero_grad -> forward/loss -> backward (through
/// the long-lived engine) -> optimizer step, wrapped in an IterationScope
/// so per-step allocation behavior is observable. One TrainStep may drive
/// several models/optimizers (the engine scratch is graph-agnostic);
/// steady-state steps hit the storage pool for every tensor they allocate.
class TrainStep {
 public:
  struct Stats {
    int64_t steps = 0;               // iterations driven by this TrainStep
    uint64_t last_heap_allocs = 0;   // storage heap allocs in the last step
    uint64_t last_pool_hits = 0;     // pool recycling hits in the last step
  };

  /// Fused-array iteration: `opt` is zero_grad'ed and stepped around the
  /// loss built by `loss_fn`. Returns the loss variable (its value is
  /// alive; its tape has been consumed by backward).
  ag::Variable run(fused::FusedOptimizer& opt, const LossFn& loss_fn);
  /// Serial counterpart (one of the B per-model runs).
  ag::Variable run(nn::Optimizer& opt, const LossFn& loss_fn);

  /// Multi-loss iterations (losses run backward in order, one step).
  std::vector<ag::Variable> run(fused::FusedOptimizer& opt,
                                const MultiLossFn& loss_fn);
  std::vector<ag::Variable> run(nn::Optimizer& opt,
                                const MultiLossFn& loss_fn);

  /// Optimizer-free iteration (timing probes, gradient checks): the
  /// model's grads are zeroed instead and no step is taken.
  ag::Variable run(nn::Module& model, const LossFn& loss_fn);

  /// Backward through the reusable engine, for hand-assembled iterations
  /// that cannot use run() (seeded backward, interleaved updates).
  void backward(const ag::Variable& loss, Tensor seed = Tensor());

  const Stats& stats() const { return stats_; }
  ag::Engine& engine() { return engine_; }

 private:
  template <typename ZeroFn, typename StepFn>
  ag::Variable run_impl(const ZeroFn& zero, const StepFn& step,
                        const LossFn& loss_fn);
  template <typename ZeroFn, typename StepFn>
  std::vector<ag::Variable> run_multi_impl(const ZeroFn& zero,
                                           const StepFn& step,
                                           const MultiLossFn& loss_fn);

  ag::Engine engine_;
  Stats stats_;
};

/// Drives a TrainStep over a fixed number of iterations with epoch
/// boundaries, scheduler stepping, and hooks — the loop around the loop.
/// The loss builder receives the step index (for data selection/logging);
/// hooks run after the optimizer step so they observe the updated model.
class TrainLoop {
 public:
  struct Options {
    /// Iterations per epoch; 0 disables epoch boundaries. Schedulers and
    /// on_epoch_end fire after each full epoch.
    int64_t steps_per_epoch = 0;
    fused::FusedLRScheduler* fused_scheduler = nullptr;
    nn::LRScheduler* scheduler = nullptr;
    std::function<void(int64_t epoch)> on_epoch_end;
    /// Scoring/tracing hook: (step index, that step's loss).
    std::function<void(int64_t step, const ag::Variable& loss)> on_step;
  };

  TrainLoop() = default;
  // Delegating overload instead of `Options opts = {}`: GCC rejects
  // defaulted {} for nested structs with NSDMI.
  explicit TrainLoop(Options opts) : opts_(std::move(opts)) {}

  /// Runs `steps` iterations of loss_fn against the fused optimizer.
  void run(int64_t steps, fused::FusedOptimizer& opt,
           const std::function<ag::Variable(int64_t)>& loss_fn);
  /// Serial-optimizer variant.
  void run(int64_t steps, nn::Optimizer& opt,
           const std::function<ag::Variable(int64_t)>& loss_fn);
  /// Optimizer-free variant (timing probes).
  void run(int64_t steps, nn::Module& model,
           const std::function<ag::Variable(int64_t)>& loss_fn);

  /// The underlying TrainStep (shared engine/stats; also usable directly
  /// for interleaved extra steps, e.g. serial verification twins).
  TrainStep& step() { return step_; }

 private:
  template <typename Target>
  void run_loop(int64_t steps, Target& target,
                const std::function<ag::Variable(int64_t)>& loss_fn);

  Options opts_;
  TrainStep step_;
};

}  // namespace hfta
