#include "hfta/fusion.h"

#include "tensor/ops.h"

namespace hfta::fused {

UnfusedBlockAdapter::UnfusedBlockAdapter(
    int64_t B, std::vector<std::shared_ptr<nn::Module>> mods)
    : FusedModule(B), mods_(std::move(mods)) {
  HFTA_CHECK(static_cast<int64_t>(mods_.size()) == B,
             "UnfusedBlockAdapter: need exactly B replicas");
  for (size_t b = 0; b < mods_.size(); ++b)
    register_module("replica" + std::to_string(b), mods_[b]);
}

ag::Variable UnfusedBlockAdapter::forward(const ag::Variable& x) {
  std::vector<ag::Variable> chunks = ag::chunk(x, array_size_, 1);
  std::vector<ag::Variable> outs;
  outs.reserve(chunks.size());
  for (size_t b = 0; b < chunks.size(); ++b)
    outs.push_back(mods_[b]->forward(chunks[b]));
  return ag::concat(outs, 1);
}

Tensor fuse_blocks(const std::vector<Tensor>& per_model) {
  HFTA_CHECK(!per_model.empty(), "fuse_blocks: empty");
  const int64_t block = per_model[0].numel();
  Tensor out({static_cast<int64_t>(per_model.size()) * block});
  for (size_t b = 0; b < per_model.size(); ++b) {
    HFTA_CHECK(per_model[b].numel() == block, "fuse_blocks: numel mismatch");
    std::copy(per_model[b].data(), per_model[b].data() + block,
              out.data() + static_cast<int64_t>(b) * block);
  }
  return out;
}

std::vector<Tensor> unfuse_blocks(const Tensor& fused, int64_t B, Shape shape) {
  const int64_t block = shape_numel(shape);
  HFTA_CHECK(fused.numel() == B * block, "unfuse_blocks: numel mismatch");
  std::vector<Tensor> out;
  for (int64_t b = 0; b < B; ++b) {
    Tensor t(shape);
    std::copy(fused.data() + b * block, fused.data() + (b + 1) * block,
              t.data());
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace hfta::fused
