#include "hfta/fusion.h"

#include <sstream>

#include "hfta/fused_norm.h"
#include "nn/layers.h"
#include "nn/norm.h"
#include "tensor/ops.h"

namespace hfta::fused {

UnfusedBlockAdapter::UnfusedBlockAdapter(
    int64_t B, std::vector<std::shared_ptr<nn::Module>> mods)
    : FusedModule(B) {
  HFTA_CHECK(static_cast<int64_t>(mods.size()) == B,
             "UnfusedBlockAdapter: need exactly B replicas");
  mods_.reserve(mods.size());
  for (auto& donor : mods) {
    std::shared_ptr<nn::Module> owned = donor->clone();
    if (owned == nullptr) {
      // Stateless kinds are pure functions of their input: sharing the
      // donor module cannot write through to anything.
      HFTA_CHECK(!nn::has_state(*donor),
                 "UnfusedBlockAdapter: stateful kind '", donor->kind_name(),
                 "' has no clone support — override Module::clone() or "
                 "register a clone factory with the LoweringRegistry");
      owned = std::move(donor);
    }
    mods_.push_back(std::move(owned));
  }
  for (size_t b = 0; b < mods_.size(); ++b)
    register_module("replica" + std::to_string(b), mods_[b]);
}

ag::Variable UnfusedBlockAdapter::forward(const ag::Variable& x) {
  std::vector<ag::Variable> chunks = ag::chunk(x, array_size_, 1);
  std::vector<ag::Variable> outs;
  outs.reserve(chunks.size());
  for (size_t b = 0; b < chunks.size(); ++b)
    outs.push_back(mods_[b]->forward(chunks[b]));
  return ag::concat(outs, 1);
}

Tensor fuse_blocks(const std::vector<Tensor>& per_model) {
  HFTA_CHECK(!per_model.empty(), "fuse_blocks: empty");
  const int64_t block = per_model[0].numel();
  Tensor out({static_cast<int64_t>(per_model.size()) * block});
  for (size_t b = 0; b < per_model.size(); ++b) {
    HFTA_CHECK(per_model[b].numel() == block, "fuse_blocks: numel mismatch");
    std::copy(per_model[b].data(), per_model[b].data() + block,
              out.data() + static_cast<int64_t>(b) * block);
  }
  return out;
}

std::vector<Tensor> unfuse_blocks(const Tensor& fused, int64_t B, Shape shape) {
  const int64_t block = shape_numel(shape);
  HFTA_CHECK(fused.numel() == B * block, "unfuse_blocks: numel mismatch");
  std::vector<Tensor> out;
  for (int64_t b = 0; b < B; ++b) {
    Tensor t(shape);
    std::copy(fused.data() + b * block, fused.data() + (b + 1) * block,
              t.data());
    out.push_back(std::move(t));
  }
  return out;
}

void copy_module_state(const nn::Module& src, nn::Module& dst) {
  nn::copy_state(src, dst);
}

// ---- diagnostics -----------------------------------------------------------

const char* layout_name(Layout l) {
  switch (l) {
    case Layout::kChannelFused: return "channel-fused";
    case Layout::kModelMajor: return "model-major";
    case Layout::kAny: return "any";
  }
  return "?";
}

std::string FusionDiagnostic::str() const {
  std::ostringstream os;
  os << "fusion: " << reason << " (at '" << (path.empty() ? "<root>" : path)
     << "', model ";
  if (model_index < 0) {
    os << "all";
  } else {
    os << model_index;
  }
  os << ")";
  return os.str();
}

FusionError::FusionError(FusionDiagnostic d)
    : std::runtime_error(d.str()), diagnostic(std::move(d)) {}

// ---- registry --------------------------------------------------------------

namespace {

Lowered stateless(std::shared_ptr<nn::Module> m, Layout in = Layout::kAny,
                  Layout out = Layout::kAny) {
  return Lowered{std::move(m), in, out};
}

}  // namespace

LoweringRegistry& LoweringRegistry::instance() {
  static LoweringRegistry* reg = new LoweringRegistry();
  return *reg;
}

void LoweringRegistry::add(const std::string& kind_name, LoweringFn fn) {
  rules_[kind_name] = std::move(fn);
}

const LoweringFn* LoweringRegistry::find(const std::string& kind_name) const {
  auto it = rules_.find(kind_name);
  return it == rules_.end() ? nullptr : &it->second;
}

void LoweringRegistry::add_clone_factory(const std::string& kind_name,
                                         CloneFactory fn) {
  clone_factories_[kind_name] = std::move(fn);
}

const CloneFactory* LoweringRegistry::find_clone_factory(
    const std::string& kind_name) const {
  auto it = clone_factories_.find(kind_name);
  return it == clone_factories_.end() ? nullptr : &it->second;
}

std::vector<std::string> LoweringRegistry::supported_kinds() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : rules_) out.push_back(k);
  return out;
}

LoweringRegistry::LoweringRegistry() {
  // Route Module::clone()'s default implementation through the per-kind
  // clone factories, so composite kinds registered via LoweringRegistrar
  // clone without a clone() override.
  nn::Module::set_clone_fallback(
      [](const nn::Module& m) -> std::shared_ptr<nn::Module> {
        const CloneFactory* fn =
            LoweringRegistry::instance().find_clone_factory(m.kind_name());
        return fn ? (*fn)(m) : nullptr;
      });

  // -- model-major family ----------------------------------------------------
  add(nn::layer_kind_name(nn::LayerKind::kLinear),
      [](const LoweringContext& ctx) {
        const nn::ModuleConfig c = ctx.reference().config();
        auto m = std::make_shared<FusedLinear>(
            ctx.array_size, c.get_int("in"), c.get_int("out"),
            c.get_int("bias") != 0, *ctx.rng);
        return Lowered{m, Layout::kModelMajor, Layout::kModelMajor};
      });
  add(nn::layer_kind_name(nn::LayerKind::kLayerNorm),
      [](const LoweringContext& ctx) {
        const nn::ModuleConfig c = ctx.reference().config();
        auto m = std::make_shared<FusedLayerNorm>(
            ctx.array_size, c.dims, static_cast<float>(c.get_float("eps")),
            *ctx.rng);
        return Lowered{m, Layout::kModelMajor, Layout::kModelMajor};
      });
  add(nn::layer_kind_name(nn::LayerKind::kFlatten),
      [](const LoweringContext& ctx) {
        return stateless(std::make_shared<FusedFlatten>(ctx.array_size),
                         Layout::kModelMajor, Layout::kModelMajor);
      });

  // -- channel-fused family --------------------------------------------------
  add(nn::layer_kind_name(nn::LayerKind::kConv2d),
      [](const LoweringContext& ctx) {
        const nn::ModuleConfig c = ctx.reference().config();
        auto m = std::make_shared<FusedConv2d>(
            ctx.array_size, c.get_int("in"), c.get_int("out"),
            c.get_int("kernel"), c.get_int("stride"), c.get_int("pad"),
            c.get_int("groups"), c.get_int("bias") != 0, *ctx.rng);
        return Lowered{m, Layout::kChannelFused, Layout::kChannelFused};
      });
  add(nn::layer_kind_name(nn::LayerKind::kConv1d),
      [](const LoweringContext& ctx) {
        const nn::ModuleConfig c = ctx.reference().config();
        auto m = std::make_shared<FusedConv1d>(
            ctx.array_size, c.get_int("in"), c.get_int("out"),
            c.get_int("kernel"), c.get_int("stride"), c.get_int("pad"),
            c.get_int("groups"), c.get_int("bias") != 0, *ctx.rng);
        return Lowered{m, Layout::kChannelFused, Layout::kChannelFused};
      });
  add(nn::layer_kind_name(nn::LayerKind::kConvTranspose2d),
      [](const LoweringContext& ctx) {
        const nn::ModuleConfig c = ctx.reference().config();
        auto m = std::make_shared<FusedConvTranspose2d>(
            ctx.array_size, c.get_int("in"), c.get_int("out"),
            c.get_int("kernel"), c.get_int("stride"), c.get_int("pad"),
            c.get_int("out_pad"), c.get_int("groups"), c.get_int("bias") != 0,
            *ctx.rng);
        return Lowered{m, Layout::kChannelFused, Layout::kChannelFused};
      });
  add(nn::layer_kind_name(nn::LayerKind::kConvTranspose1d),
      [](const LoweringContext& ctx) {
        const nn::ModuleConfig c = ctx.reference().config();
        auto m = std::make_shared<FusedConvTranspose1d>(
            ctx.array_size, c.get_int("in"), c.get_int("out"),
            c.get_int("kernel"), c.get_int("stride"), c.get_int("pad"),
            c.get_int("out_pad"), c.get_int("groups"), c.get_int("bias") != 0,
            *ctx.rng);
        return Lowered{m, Layout::kChannelFused, Layout::kChannelFused};
      });
  add(nn::layer_kind_name(nn::LayerKind::kBatchNorm2d),
      [](const LoweringContext& ctx) {
        const nn::ModuleConfig c = ctx.reference().config();
        auto m = std::make_shared<FusedBatchNorm2d>(
            ctx.array_size, c.get_int("channels"),
            static_cast<float>(c.get_float("eps")),
            static_cast<float>(c.get_float("momentum")));
        return Lowered{m, Layout::kChannelFused, Layout::kChannelFused};
      });
  add(nn::layer_kind_name(nn::LayerKind::kBatchNorm1d),
      [](const LoweringContext& ctx) {
        const nn::ModuleConfig c = ctx.reference().config();
        auto m = std::make_shared<FusedBatchNorm1d>(
            ctx.array_size, c.get_int("channels"),
            static_cast<float>(c.get_float("eps")),
            static_cast<float>(c.get_float("momentum")));
        return Lowered{m, Layout::kChannelFused, Layout::kChannelFused};
      });
  add(nn::layer_kind_name(nn::LayerKind::kMaxPool2d),
      [](const LoweringContext& ctx) {
        const nn::ModuleConfig c = ctx.reference().config();
        return stateless(
            std::make_shared<FusedMaxPool2d>(ctx.array_size,
                                             c.get_int("kernel"),
                                             c.get_int("stride"),
                                             c.get_int("pad")),
            Layout::kChannelFused, Layout::kChannelFused);
      });
  add(nn::layer_kind_name(nn::LayerKind::kAdaptiveAvgPool2d),
      [](const LoweringContext& ctx) {
        const nn::ModuleConfig c = ctx.reference().config();
        return stateless(
            std::make_shared<FusedAdaptiveAvgPool2d>(
                ctx.array_size, c.get_int("out_h"), c.get_int("out_w")),
            Layout::kChannelFused, Layout::kChannelFused);
      });
  add(nn::layer_kind_name(nn::LayerKind::kDropout2d),
      [](const LoweringContext& ctx) {
        const nn::ModuleConfig c = ctx.reference().config();
        return stateless(
            std::make_shared<FusedDropout2d>(
                ctx.array_size, static_cast<float>(c.get_float("p"))),
            Layout::kChannelFused, Layout::kChannelFused);
      });

  // -- layout-agnostic steps -------------------------------------------------
  add(nn::layer_kind_name(nn::LayerKind::kDropout),
      [](const LoweringContext& ctx) {
        const nn::ModuleConfig c = ctx.reference().config();
        return stateless(std::make_shared<FusedDropout>(
            ctx.array_size, static_cast<float>(c.get_float("p"))));
      });
  add(nn::layer_kind_name(nn::LayerKind::kGlobalMaxPool1d),
      [](const LoweringContext&) {
        return stateless(std::make_shared<nn::GlobalMaxPool1d>());
      });
  add(nn::layer_kind_name(nn::LayerKind::kReLU), [](const LoweringContext&) {
    return stateless(std::make_shared<nn::ReLU>());
  });
  add(nn::layer_kind_name(nn::LayerKind::kReLU6), [](const LoweringContext&) {
    return stateless(std::make_shared<nn::ReLU6>());
  });
  add(nn::layer_kind_name(nn::LayerKind::kLeakyReLU),
      [](const LoweringContext& ctx) {
        const auto& ref = static_cast<const nn::LeakyReLU&>(ctx.reference());
        return stateless(std::make_shared<nn::LeakyReLU>(ref.slope));
      });
  add(nn::layer_kind_name(nn::LayerKind::kTanh), [](const LoweringContext&) {
    return stateless(std::make_shared<nn::Tanh>());
  });
  add(nn::layer_kind_name(nn::LayerKind::kSigmoid),
      [](const LoweringContext&) {
        return stateless(std::make_shared<nn::Sigmoid>());
      });
  add(nn::layer_kind_name(nn::LayerKind::kHardswish),
      [](const LoweringContext&) {
        return stateless(std::make_shared<nn::Hardswish>());
      });
  add(nn::layer_kind_name(nn::LayerKind::kGELU), [](const LoweringContext&) {
    return stateless(std::make_shared<nn::GELU>());
  });
}

// ---- congruence ------------------------------------------------------------

namespace {

std::string join_path(const std::string& a, const std::string& b) {
  return a.empty() ? b : a + "." + b;
}

void check_congruent(const std::string& path,
                     const std::vector<const nn::Module*>& mods,
                     std::vector<FusionDiagnostic>* out) {
  const nn::Module& ref = *mods[0];
  const std::string ref_kind = ref.kind_name();
  const nn::ModuleConfig ref_cfg = ref.config();
  for (size_t b = 1; b < mods.size(); ++b) {
    if (mods[b]->kind_name() != ref_kind) {
      out->push_back({path, static_cast<int64_t>(b),
                      "layer kind mismatch: model 0 is '" + ref_kind +
                          "' but model " + std::to_string(b) + " is '" +
                          mods[b]->kind_name() + "'"});
      return;  // no point comparing configs/children of different kinds
    }
    const nn::ModuleConfig cfg = mods[b]->config();
    if (cfg.ints.size() != ref_cfg.ints.size() ||
        cfg.floats.size() != ref_cfg.floats.size()) {
      out->push_back({path, static_cast<int64_t>(b),
                      "config arity mismatch for '" + ref_kind + "'"});
      continue;
    }
    for (size_t i = 0; i < ref_cfg.ints.size(); ++i) {
      if (cfg.ints[i].second != ref_cfg.ints[i].second) {
        out->push_back(
            {path, static_cast<int64_t>(b),
             "structural hyper-parameter '" + ref_cfg.ints[i].first +
                 "' differs: model 0 has " +
                 std::to_string(ref_cfg.ints[i].second) + ", model " +
                 std::to_string(b) + " has " +
                 std::to_string(cfg.ints[i].second)});
      }
    }
    for (size_t i = 0; i < ref_cfg.floats.size(); ++i) {
      if (cfg.floats[i].second != ref_cfg.floats[i].second) {
        out->push_back(
            {path, static_cast<int64_t>(b),
             "hyper-parameter '" + ref_cfg.floats[i].first +
                 "' differs: model 0 has " +
                 std::to_string(ref_cfg.floats[i].second) + ", model " +
                 std::to_string(b) + " has " +
                 std::to_string(cfg.floats[i].second)});
      }
    }
    if (cfg.dims != ref_cfg.dims) {
      out->push_back({path, static_cast<int64_t>(b),
                      "shape hyper-parameter differs: " +
                          shape_str(ref_cfg.dims) + " vs " +
                          shape_str(cfg.dims)});
    }
  }

  const auto& ref_children = ref.named_children();
  for (size_t b = 1; b < mods.size(); ++b) {
    if (mods[b]->named_children().size() != ref_children.size()) {
      out->push_back(
          {path, static_cast<int64_t>(b),
           "submodule count differs: model 0 has " +
               std::to_string(ref_children.size()) + ", model " +
               std::to_string(b) + " has " +
               std::to_string(mods[b]->named_children().size())});
      return;
    }
  }
  for (size_t i = 0; i < ref_children.size(); ++i) {
    std::vector<const nn::Module*> child_mods;
    bool names_ok = true;
    for (const nn::Module* m : mods) {
      const auto& kv = m->named_children()[i];
      if (kv.first != ref_children[i].first) {
        out->push_back({path, static_cast<int64_t>(child_mods.size()),
                        "submodule name differs: '" + ref_children[i].first +
                            "' vs '" + kv.first + "'"});
        names_ok = false;
        break;
      }
      child_mods.push_back(kv.second.get());
    }
    if (names_ok)
      check_congruent(join_path(path, ref_children[i].first), child_mods, out);
  }
}

}  // namespace

// ---- FusedArray ------------------------------------------------------------

FusedArray::FusedArray(int64_t B, FusionOptions opts)
    : FusedModule(B), opts_(std::move(opts)) {}

ag::Variable FusedArray::forward(const ag::Variable& x) {
  ag::Variable h = x;
  Layout cur = Layout::kChannelFused;
  auto convert_to = [&](Layout want) {
    if (want == Layout::kAny || want == cur) return;
    h = want == Layout::kModelMajor ? to_model_major(h, array_size_)
                                    : to_channel_fused(h);
    cur = want;
  };
  for (const Step& s : steps_) {
    convert_to(s.in);
    h = s.module->forward(h);
    if (s.out != Layout::kAny) cur = s.out;
  }
  convert_to(opts_.output_layout);
  return h;
}

void FusedArray::load_model(int64_t b, const nn::Module& per_model_root) {
  HFTA_CHECK(b >= 0 && b < array_size_, "FusedArray::load_model: bad index");
  for (Step& s : steps_) {
    if (s.fused && s.state.empty()) continue;  // stateless step
    const nn::Module* src = per_model_root.find(s.path);
    HFTA_CHECK(src != nullptr, "FusedArray::load_model: path '", s.path,
               "' not found in the per-model tree");
    if (!s.fused) {
      auto& adapter = static_cast<UnfusedBlockAdapter&>(*s.module);
      copy_module_state(*src, *adapter.replicas()[static_cast<size_t>(b)]);
    } else {
      load_state(s.state, array_size_, b, *src);
    }
  }
}

void FusedArray::save_model(int64_t b, nn::Module& per_model_root) const {
  HFTA_CHECK(b >= 0 && b < array_size_, "FusedArray::save_model: bad index");
  for (const Step& s : steps_) {
    if (s.fused && s.state.empty()) continue;  // stateless step
    nn::Module* dst = per_model_root.find(s.path);
    HFTA_CHECK(dst != nullptr, "FusedArray::save_model: path '", s.path,
               "' not found in the per-model tree");
    if (!s.fused) {
      const auto& adapter =
          static_cast<const UnfusedBlockAdapter&>(*s.module);
      copy_module_state(*adapter.replicas()[static_cast<size_t>(b)], *dst);
    } else {
      store_state(s.state, array_size_, b, *dst);
    }
  }
}

bool FusedArray::unit_fused(int64_t u) const {
  for (const Step& s : steps_)
    if (s.unit == u && !s.fused) return false;
  return true;
}

Layout FusedArray::output_layout() const {
  if (opts_.output_layout != Layout::kAny) return opts_.output_layout;
  Layout cur = Layout::kChannelFused;
  for (const Step& s : steps_) {
    if (s.out != Layout::kAny) {
      cur = s.out;
    } else if (s.in != Layout::kAny) {
      cur = s.in;
    }
  }
  return cur;
}

std::string FusedArray::describe() const {
  std::ostringstream os;
  os << "FusedArray(B=" << array_size_ << ", " << num_units_ << " units)\n";
  for (const Step& s : steps_) {
    os << "  [unit " << s.unit << "] "
       << (s.path.empty() ? "<root>" : s.path) << ": " << s.kind
       << (s.fused ? "" : " (unfused x" + std::to_string(array_size_) + ")")
       << "  (" << layout_name(s.in) << " -> " << layout_name(s.out) << ")\n";
  }
  return os.str();
}

// ---- FusionPlan ------------------------------------------------------------

FusionPlan::FusionPlan(int64_t array_size, FusionOptions opts)
    : array_size_(array_size), opts_(std::move(opts)) {
  HFTA_CHECK(array_size_ >= 1, "FusionPlan: array size must be >= 1");
}

std::vector<FusionDiagnostic> FusionPlan::analyze(
    const std::vector<const nn::Module*>& models) const {
  std::vector<FusionDiagnostic> out;
  if (static_cast<int64_t>(models.size()) != array_size_) {
    out.push_back({"", -1,
                   "expected " + std::to_string(array_size_) +
                       " models, got " + std::to_string(models.size())});
    return out;
  }
  check_congruent("", models, &out);
  return out;
}

namespace {

FusedArray::Step make_adapter_step(
    int64_t B, const std::string& path,
    std::vector<std::shared_ptr<nn::Module>> reps, int64_t unit) {
  FusedArray::Step s;
  s.kind = reps[0]->kind_name();
  // A stateful kind without clone support cannot become an owned replica:
  // report it as a structured planner diagnostic, not a bare Error. Clone
  // support is per-kind and the replicas are congruent, so probing the
  // reference replica suffices.
  if (nn::has_state(*reps[0]) && reps[0]->clone() == nullptr) {
    throw FusionError(
        {path, -1,
         "unfused unit of stateful kind '" + reps[0]->kind_name() +
             "' has no clone support — override Module::clone() or "
             "register a clone factory with the LoweringRegistry"});
  }
  s.module = std::make_shared<UnfusedBlockAdapter>(B, std::move(reps));
  s.in = Layout::kChannelFused;
  s.out = Layout::kChannelFused;
  s.path = path;
  // No StateMap: adapter replicas are whole per-model modules, transferred
  // by nn::copy_state in FusedArray::{load,save}_model.
  s.fused = false;
  s.unit = unit;
  return s;
}

/// Derives the state schema of a lowered step's module and validates it
/// against the per-model reference layer: every per-model parameter and
/// buffer must be covered by exactly one entry, sized B x the per-model
/// numel (shape-checked through the slice rule at transfer time). A
/// registration that forgets part of its state — the old "ships a loader,
/// silently lacks store support" class of bug — now fails the compile with
/// a structured diagnostic instead of surfacing as drift after a repack.
StateMap derive_step_state(const nn::Module& fused_mod, int64_t B,
                           const nn::Module& ref, const std::string& path) {
  const auto* fm = dynamic_cast<const FusedModule*>(&fused_mod);
  const StateMap map = fm ? fm->state_map() : StateMap{};
  std::map<std::string, int64_t> want;  // per-model tensor path -> numel
  for (const auto& [n, v] : ref.named_parameters()) want.emplace(n, v.numel());
  for (const auto& [n, t] : nn::named_buffers_recursive(ref))
    want.emplace(n, t.numel());
  std::map<std::string, int64_t> seen;
  for (const StateEntry& e : map) {
    if (++seen[e.path] > 1) {
      throw FusionError({path, -1,
                         "state schema for kind '" + ref.kind_name() +
                             "' lists '" + e.path + "' twice"});
    }
    const auto it = want.find(e.path);
    if (it == want.end()) {
      throw FusionError({path, -1,
                         "state schema entry '" + e.path +
                             "' has no per-model counterpart in kind '" +
                             ref.kind_name() + "'"});
    }
    const int64_t fused_numel =
        e.is_buffer() ? e.fused_buffer.numel() : e.fused_param.numel();
    if (fused_numel != B * it->second) {
      throw FusionError(
          {path, -1,
           "state entry '" + e.path + "' of kind '" + ref.kind_name() +
               "': fused numel " + std::to_string(fused_numel) + " != B(" +
               std::to_string(B) + ") x per-model numel " +
               std::to_string(it->second)});
    }
  }
  for (const auto& [n, numel] : want) {
    (void)numel;
    if (seen.count(n) == 0) {
      throw FusionError(
          {path, -1,
           "lowering for kind '" + ref.kind_name() +
               "' covers no state entry for per-model tensor '" + n +
               "' — describe it in the fused module's state_map()"});
    }
  }
  return map;
}

void lower_into(int64_t B, Rng& rng, const std::string& path,
                const std::vector<std::shared_ptr<nn::Module>>& reps,
                int64_t unit, bool allow_fallback,
                std::vector<FusedArray::Step>* steps) {
  const nn::Module& ref = *reps[0];
  if (ref.kind() == nn::LayerKind::kSequential) {
    const auto& ref_children = ref.named_children();
    for (size_t i = 0; i < ref_children.size(); ++i) {
      std::vector<std::shared_ptr<nn::Module>> child_reps;
      for (const auto& r : reps)
        child_reps.push_back(r->named_children()[i].second);
      lower_into(B, rng, join_path(path, ref_children[i].first), child_reps,
                 unit, allow_fallback, steps);
    }
    return;
  }
  const LoweringFn* fn = LoweringRegistry::instance().find(ref.kind_name());
  if (fn == nullptr) {
    if (allow_fallback) {
      steps->push_back(make_adapter_step(B, path, reps, unit));
      return;
    }
    throw FusionError(
        {path, -1,
         "no fusion rule registered for layer kind '" + ref.kind_name() +
             "'; register a lowering, enable allow_unfused_fallback, or turn "
             "this unit off in fuse_mask"});
  }
  LoweringContext ctx;
  ctx.array_size = B;
  for (const auto& r : reps) ctx.replicas.push_back(r.get());
  ctx.rng = &rng;
  ctx.path = path;
  Lowered l = (*fn)(ctx);
  HFTA_CHECK(l.module != nullptr, "lowering for '", ref.kind_name(),
             "' returned no module");
  FusedArray::Step s;
  s.state = derive_step_state(*l.module, B, ref, path);
  s.module = std::move(l.module);
  s.in = l.in;
  s.out = l.out;
  s.path = path;
  s.kind = ref.kind_name();
  s.fused = true;
  s.unit = unit;
  steps->push_back(std::move(s));
}

}  // namespace

std::shared_ptr<FusedArray> FusionPlan::compile(
    const std::vector<std::shared_ptr<nn::Module>>& models, Rng& rng) const {
  std::vector<const nn::Module*> raw;
  for (const auto& m : models) raw.push_back(m.get());
  std::vector<FusionDiagnostic> diags = analyze(raw);
  if (!diags.empty()) throw FusionError(diags.front());
  return compile_impl(models, rng, /*load_weights=*/true);
}

std::shared_ptr<FusedArray> FusionPlan::compile_structure_only(
    const std::shared_ptr<nn::Module>& template_model, Rng& rng) const {
  HFTA_CHECK(template_model != nullptr,
             "compile_structure_only: null template");
  // B references to the one template: trivially congruent, so no analyze()
  // pass; unfused units clone the template into owned replicas.
  std::vector<std::shared_ptr<nn::Module>> models(
      static_cast<size_t>(array_size_), template_model);
  return compile_impl(models, rng, /*load_weights=*/false);
}

std::shared_ptr<FusedArray> FusionPlan::repack_multi(
    const std::vector<const FusedArray*>& sources,
    const std::vector<RepackPick>& picks, const nn::Module& template_model,
    Rng& rng) const {
  HFTA_CHECK(!sources.empty(), "FusionPlan::repack_multi: no sources");
  HFTA_CHECK(static_cast<int64_t>(picks.size()) == array_size_,
             "FusionPlan::repack_multi: plan is sized for ", array_size_,
             " models but picks has ", picks.size());
  // Extract each survivor from its source array into its own per-model
  // tree, then compile the smaller array from those trees — compile copies
  // their exact weights and buffers, so every survivor's state carries over
  // bit-for-bit no matter which chunked array it trained in.
  std::vector<std::shared_ptr<nn::Module>> survivors;
  survivors.reserve(picks.size());
  for (const RepackPick& p : picks) {
    HFTA_CHECK(p.source < sources.size() && sources[p.source] != nullptr,
               "FusionPlan::repack_multi: pick references source ", p.source,
               " of ", sources.size());
    std::shared_ptr<nn::Module> tree = template_model.clone();
    HFTA_CHECK(tree != nullptr, "FusionPlan::repack_multi: template kind '",
               template_model.kind_name(), "' has no clone support");
    sources[p.source]->save_model(p.model, *tree);
    survivors.push_back(std::move(tree));
  }
  return compile(survivors, rng);
}

std::shared_ptr<FusedArray> FusionPlan::repack(
    const FusedArray& src, const std::vector<int64_t>& keep,
    const nn::Module& template_model, Rng& rng) const {
  std::vector<RepackPick> picks;
  picks.reserve(keep.size());
  for (int64_t b : keep) picks.push_back(RepackPick{0, b});
  return repack_multi({&src}, picks, template_model, rng);
}

std::shared_ptr<FusedArray> FusionPlan::compile_impl(
    const std::vector<std::shared_ptr<nn::Module>>& models, Rng& rng,
    bool load_weights) const {
  // Top-level fusion units: the children of a root Sequential, or the root
  // itself. This is the granularity of fuse_mask (paper Fig. 17).
  std::vector<std::pair<std::string, std::vector<std::shared_ptr<nn::Module>>>>
      units;
  if (models[0]->kind() == nn::LayerKind::kSequential) {
    const auto& ref_children = models[0]->named_children();
    for (size_t i = 0; i < ref_children.size(); ++i) {
      std::vector<std::shared_ptr<nn::Module>> reps;
      for (const auto& m : models)
        reps.push_back(m->named_children()[i].second);
      units.emplace_back(ref_children[i].first, std::move(reps));
    }
  } else {
    units.emplace_back("", models);
  }
  if (!opts_.fuse_mask.empty() &&
      opts_.fuse_mask.size() != units.size()) {
    throw FusionError(
        {"", -1,
         "fuse_mask has " + std::to_string(opts_.fuse_mask.size()) +
             " entries but the model has " + std::to_string(units.size()) +
             " top-level fusion units"});
  }

  auto array = std::shared_ptr<FusedArray>(new FusedArray(array_size_, opts_));
  array->num_units_ = static_cast<int64_t>(units.size());
  for (size_t u = 0; u < units.size(); ++u) {
    auto& [path, reps] = units[u];
    const bool fuse = opts_.fuse_mask.empty() || opts_.fuse_mask[u];
    if (fuse) {
      lower_into(array_size_, rng, path, reps, static_cast<int64_t>(u),
                 opts_.allow_unfused_fallback, &array->steps_);
    } else {
      array->steps_.push_back(make_adapter_step(
          array_size_, path, reps, static_cast<int64_t>(u)));
    }
  }

  for (size_t i = 0; i < array->steps_.size(); ++i) {
    FusedArray::Step& s = array->steps_[i];
    array->register_module("step" + std::to_string(i), s.module);
    // Adapter steps cloned the donors' state when they were built — only
    // fused steps still need the donors' weights copied in.
    if (!load_weights || !s.fused || s.state.empty()) continue;
    for (int64_t b = 0; b < array_size_; ++b) {
      const nn::Module* src = models[static_cast<size_t>(b)]->find(s.path);
      HFTA_CHECK(src != nullptr, "compile: path '", s.path, "' not found");
      load_state(s.state, array_size_, b, *src);
    }
  }
  return array;
}

// ---- planner-support modules ------------------------------------------------

ag::Variable FusedFlatten::forward(const ag::Variable& x) {
  HFTA_CHECK(x.dim() >= 2 && x.size(0) == array_size_,
             "FusedFlatten: expected model-major [B, N, ...], got ",
             shape_str(x.shape()));
  return ag::reshape(x, {x.size(0), x.size(1),
                         x.numel() / (x.size(0) * x.size(1))});
}

}  // namespace hfta::fused
