// Fused-loss handling (paper Appendix C).
//
// When each model's loss is a *mean* over its mini-batch, the naive fused
// loss L = (1/B) sum_b l_b under-scales every model's gradients by 1/B
// (Eq. 2); scaling the fused loss by B reconstructs the exact per-model
// gradients (Eq. 3). Sum (or no) reduction needs no scaling (Eq. 5).
#pragma once

#include "autograd/functions.h"

namespace hfta::fused {

/// Applies the Appendix-C scaling rule to a fused loss.
inline ag::Variable scale_fused_loss(const ag::Variable& fused_loss,
                                     int64_t array_size,
                                     ag::Reduction reduction) {
  if (reduction == ag::Reduction::kMean)
    return ag::mul_scalar(fused_loss, static_cast<float>(array_size));
  return fused_loss;  // sum / none: already equivalent
}

/// Fused cross-entropy for model-major logits [B, N, C] and labels [B, N]:
/// one loss op over all B*N rows, then the Appendix-C scaling.
ag::Variable fused_cross_entropy(const ag::Variable& logits,
                                 const Tensor& labels,
                                 ag::Reduction reduction);

/// Fused NLL for model-major log-probs [B, N, C] / labels [B, N].
ag::Variable fused_nll_loss(const ag::Variable& log_probs,
                            const Tensor& labels, ag::Reduction reduction);

/// Fused BCE-with-logits over any fused layout (targets same shape).
ag::Variable fused_bce_with_logits(const ag::Variable& logits,
                                   const Tensor& targets,
                                   ag::Reduction reduction, int64_t array_size);

/// Per-model loss values from a fused model-major batch (for logging /
/// HFHT): mean (or sum) of the per-element CE loss within each model block.
std::vector<double> per_model_cross_entropy(const Tensor& logits,
                                            const Tensor& labels);

}  // namespace hfta::fused
