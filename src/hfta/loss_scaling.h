// Fused-loss handling (paper Appendix C) + dynamic loss scaling for AMP.
//
// When each model's loss is a *mean* over its mini-batch, the naive fused
// loss L = (1/B) sum_b l_b under-scales every model's gradients by 1/B
// (Eq. 2); scaling the fused loss by B reconstructs the exact per-model
// gradients (Eq. 3). Sum (or no) reduction needs no scaling (Eq. 5).
//
// The dynamic LossScaler is orthogonal to that rule: Appendix-C scaling is
// part of the loss VALUE (a recorded mul_scalar op), while the AMP scale S
// multiplies the backward seed — d(S*L)/dw == S * dL/dw, so seeding the
// engine with S instead of 1 scales every gradient without touching the
// printed loss. TrainStep unscales gradients (×1/S) before the optimizer
// and skips the step when any gradient is non-finite. Scales are kept to
// powers of two: scaling and unscaling are then exact exponent shifts, so
// an AMP run with scale S produces bit-identical weights to the same AMP
// run with scale 1 (absent overflow), and fused-vs-serial exactness
// survives loss scaling.
#pragma once

#include <cstdint>

#include "autograd/functions.h"

namespace hfta::fused {

/// Dynamic loss-scale controller (the amp_scaler "GradScaler" recipe):
/// start high, halve on overflow (skipping that step), double after a
/// clean streak of `growth_interval` steps. Pure bookkeeping — TrainStep
/// owns one and applies its scale via the backward seed; it survives
/// Hyperband repacks because the executor's TrainStep persists across them.
class LossScaler {
 public:
  struct Options {
    double init_scale = 65536.0;   // 2^16
    double growth_factor = 2.0;    // on a clean streak
    double backoff_factor = 0.5;   // on overflow
    int64_t growth_interval = 2000;  // clean steps between growths
  };

  LossScaler() : LossScaler(Options{}) {}
  explicit LossScaler(const Options& o) : opts_(o), scale_(o.init_scale) {}

  double scale() const { return scale_; }
  const Options& options() const { return opts_; }
  /// Clean steps since the last overflow (resets on backoff).
  int64_t growth_streak() const { return growth_streak_; }
  /// Total steps skipped because a gradient was non-finite.
  int64_t overflow_skips() const { return overflow_skips_; }

  /// Advances the controller after a step: backoff on overflow, grow on a
  /// full clean streak. Call exactly once per optimization step, after the
  /// finiteness verdict and (when clean) the optimizer step.
  void update(bool found_inf) {
    if (found_inf) {
      scale_ *= opts_.backoff_factor;
      growth_streak_ = 0;
      ++overflow_skips_;
      return;
    }
    if (++growth_streak_ >= opts_.growth_interval) {
      scale_ *= opts_.growth_factor;
      growth_streak_ = 0;
    }
  }

  /// In-place grad *= inv_scale, returning false if any element is
  /// non-finite (inf/nan). Allocation-free (writes through the existing
  /// buffer) and order-independent (the verdict is an OR over elements),
  /// so it is bit-identical at any thread count. Defined in the .cpp so it
  /// can use the parallel runtime.
  static bool unscale_finite(Tensor& grad, double inv_scale);

 private:
  Options opts_;
  double scale_;
  int64_t growth_streak_ = 0;
  int64_t overflow_skips_ = 0;
};

/// Applies the Appendix-C scaling rule to a fused loss.
inline ag::Variable scale_fused_loss(const ag::Variable& fused_loss,
                                     int64_t array_size,
                                     ag::Reduction reduction) {
  if (reduction == ag::Reduction::kMean)
    return ag::mul_scalar(fused_loss, static_cast<float>(array_size));
  return fused_loss;  // sum / none: already equivalent
}

/// Fused cross-entropy for model-major logits [B, N, C] and labels [B, N]:
/// one loss op over all B*N rows, then the Appendix-C scaling.
ag::Variable fused_cross_entropy(const ag::Variable& logits,
                                 const Tensor& labels,
                                 ag::Reduction reduction);

/// Fused NLL for model-major log-probs [B, N, C] / labels [B, N].
ag::Variable fused_nll_loss(const ag::Variable& log_probs,
                            const Tensor& labels, ag::Reduction reduction);

/// Fused BCE-with-logits over any fused layout (targets same shape).
ag::Variable fused_bce_with_logits(const ag::Variable& logits,
                                   const Tensor& targets,
                                   ag::Reduction reduction, int64_t array_size);

/// Per-model loss values from a fused model-major batch (for logging /
/// HFHT): mean (or sum) of the per-element CE loss within each model block.
std::vector<double> per_model_cross_entropy(const Tensor& logits,
                                            const Tensor& labels);

}  // namespace hfta::fused
